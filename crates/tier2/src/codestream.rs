//! Codestream container: marker segments and payload (de)serialization.
//!
//! The container borrows the ISO 15444-1 marker architecture — a `SOC`
//! start marker, parameter marker segments with explicit big-endian
//! lengths, tile-part data after `SOD`, and a trailing `EOC` — but the
//! payload layouts are pj2k's own (see DESIGN.md §5: no byte-level ISO
//! interop is claimed). Marker codes reuse the standard values so
//! hex-dumped streams look familiar.
//!
//! The reader half of this module is on the untrusted-input boundary (see
//! DESIGN.md §9): every read is bounds-checked and every failure carries
//! the failing marker code and byte offset through [`ParseError`].

#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

/// Start of codestream.
pub const SOC: u16 = 0xFF4F;
/// Image and tile size parameters.
pub const SIZ: u16 = 0xFF51;
/// Coding style (wavelet, levels, code-block size, layers).
pub const COD: u16 = 0xFF52;
/// Quantization parameters.
pub const QCD: u16 = 0xFF5C;
/// Start of tile-part header.
pub const SOT: u16 = 0xFF90;
/// Start of tile data (followed by raw packet bytes with explicit length).
pub const SOD: u16 = 0xFF93;
/// Comment segment.
pub const COM: u16 = 0xFF64;
/// End of codestream.
pub const EOC: u16 = 0xFFD9;

/// Smallest payload a marker segment may legally carry, mirroring the
/// fixed field layouts the encoder writes. A segment whose length field
/// admits fewer payload bytes is rejected at the container layer, before
/// any payload field is read — a zero-length `COD` or `QCD` must error
/// cleanly rather than reach the payload cursor.
pub fn min_payload(marker: u16) -> usize {
    match marker {
        // u32 width + u32 height + u8 ncomp + u8 depth + u8 signed +
        // u32 tile-w + u32 tile-h
        SIZ => 19,
        // u8 wavelet + u8 levels + u16 cb-w + u16 cb-h + u16 layers +
        // u8 tier-1 flags
        COD => 9,
        // f64 base quantization step
        QCD => 8,
        // u32 tile index + u32 body length
        SOT => 8,
        // COM and anything unknown may be empty.
        _ => 0,
    }
}

/// Error raised while parsing a codestream.
///
/// Every variant records the byte offset at which parsing failed; variants
/// tied to a specific marker segment also carry the marker code, so a
/// malformed stream can be diagnosed without re-parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Fewer than two bytes remain where a marker code was expected.
    TruncatedMarker {
        /// Offset of the incomplete marker.
        offset: usize,
    },
    /// A different marker appeared than the stream structure requires.
    UnexpectedMarker {
        /// The marker the structure called for.
        expected: u16,
        /// The marker actually present.
        got: u16,
        /// Offset of the offending marker.
        offset: usize,
    },
    /// A segment's 2-byte length field is missing or incomplete.
    TruncatedLength {
        /// The segment's marker code.
        marker: u16,
        /// Offset where the length field should start.
        offset: usize,
    },
    /// A segment length that is structurally impossible: `< 2` (the length
    /// field includes itself) or running past the end of the stream.
    BadSegmentLength {
        /// The segment's marker code.
        marker: u16,
        /// The declared length.
        len: usize,
        /// Offset of the length field.
        offset: usize,
    },
    /// A segment payload shorter than the marker's fixed minimum layout
    /// (see [`min_payload`]) — e.g. an empty `COD` or `QCD`.
    ShortPayload {
        /// The segment's marker code.
        marker: u16,
        /// Payload bytes actually present.
        len: usize,
        /// Payload bytes the marker's layout requires.
        min: usize,
        /// Offset of the payload.
        offset: usize,
    },
    /// Raw body bytes (tile data after `SOD`) run past the stream end.
    TruncatedBody {
        /// Bytes requested.
        wanted: usize,
        /// Bytes actually available.
        available: usize,
        /// Offset of the body.
        offset: usize,
    },
    /// A fixed-width payload field read past the end of its segment.
    TruncatedPayload {
        /// Offset (within the payload) of the incomplete field.
        offset: usize,
    },
}

impl ParseError {
    /// Byte offset at which parsing failed ([`ParseError::TruncatedPayload`]
    /// offsets are relative to the payload start; all others are absolute
    /// stream offsets).
    pub fn offset(&self) -> usize {
        match *self {
            ParseError::TruncatedMarker { offset }
            | ParseError::UnexpectedMarker { offset, .. }
            | ParseError::TruncatedLength { offset, .. }
            | ParseError::BadSegmentLength { offset, .. }
            | ParseError::ShortPayload { offset, .. }
            | ParseError::TruncatedBody { offset, .. }
            | ParseError::TruncatedPayload { offset } => offset,
        }
    }

    /// The marker code involved in the failure, when one is known.
    pub fn marker(&self) -> Option<u16> {
        match *self {
            ParseError::UnexpectedMarker { got, .. } => Some(got),
            ParseError::TruncatedLength { marker, .. }
            | ParseError::BadSegmentLength { marker, .. }
            | ParseError::ShortPayload { marker, .. } => Some(marker),
            _ => None,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            ParseError::TruncatedMarker { offset } => {
                write!(f, "truncated marker at offset {offset}")
            }
            ParseError::UnexpectedMarker {
                expected,
                got,
                offset,
            } => write!(
                f,
                "expected marker {expected:#06X}, got {got:#06X} at offset {offset}"
            ),
            ParseError::TruncatedLength { marker, offset } => write!(
                f,
                "truncated length field of marker {marker:#06X} at offset {offset}"
            ),
            ParseError::BadSegmentLength {
                marker,
                len,
                offset,
            } => write!(
                f,
                "bad segment length {len} for marker {marker:#06X} at offset {offset}"
            ),
            ParseError::ShortPayload {
                marker,
                len,
                min,
                offset,
            } => write!(
                f,
                "marker {marker:#06X} payload of {len} bytes is shorter than \
                 the {min}-byte minimum at offset {offset}"
            ),
            ParseError::TruncatedBody {
                wanted,
                available,
                offset,
            } => write!(
                f,
                "truncated body at offset {offset}: wanted {wanted} bytes, \
                 {available} available"
            ),
            ParseError::TruncatedPayload { offset } => {
                write!(f, "truncated payload at field offset {offset}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializer for marker segments and their payloads.
#[derive(Debug, Default)]
pub struct MarkerWriter {
    out: Vec<u8>,
}

// AUDIT: the writer half serializes encoder-produced structures; it never
// touches untrusted input. Its arithmetic is bounded by the asserted
// 16-bit segment limit.
#[allow(clippy::arithmetic_side_effects)]
impl MarkerWriter {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit a bare marker (no length, no payload): `SOC`, `EOC`.
    pub fn marker(&mut self, code: u16) {
        self.out.extend_from_slice(&code.to_be_bytes());
    }

    /// Emit a marker segment: marker, 2-byte length (payload + 2), payload.
    ///
    /// # Panics
    /// Panics if the payload exceeds the 16-bit length field.
    pub fn segment(&mut self, code: u16, payload: &[u8]) {
        // AUDIT: encoder-side size invariant on trusted data, not
        // reachable from decoded input.
        assert!(
            payload.len() + 2 <= u16::MAX as usize,
            "marker payload too long"
        );
        self.marker(code);
        self.out
            .extend_from_slice(&((payload.len() as u16 + 2).to_be_bytes()));
        self.out.extend_from_slice(payload);
    }

    /// Emit raw bytes (tile body data after `SOD`).
    // AUDIT(hot): amortized — appends whole segments to the growing
    // codestream vec, O(markers) per image. (Reached by the hot-path
    // audit via a name collision with `Plane::raw`; kept justified
    // rather than special-cased.)
    pub fn raw(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    /// Finish and return the stream.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }

    /// Bytes emitted so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// Parser for marker streams written by [`MarkerWriter`].
#[derive(Debug)]
pub struct MarkerReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> MarkerReader<'a> {
    /// Parse from `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Peek the next marker code without consuming it.
    pub fn peek_marker(&self) -> Result<u16, ParseError> {
        match self.data.get(self.pos..self.pos.saturating_add(2)) {
            Some(&[a, b]) => Ok(u16::from_be_bytes([a, b])),
            _ => Err(ParseError::TruncatedMarker { offset: self.pos }),
        }
    }

    /// Consume a bare marker, checking it equals `expect`.
    pub fn expect_marker(&mut self, expect: u16) -> Result<(), ParseError> {
        let got = self.peek_marker()?;
        if got != expect {
            return Err(ParseError::UnexpectedMarker {
                expected: expect,
                got,
                offset: self.pos,
            });
        }
        self.pos = self.pos.saturating_add(2);
        Ok(())
    }

    /// Consume a marker segment, checking the marker code and the marker's
    /// minimum payload size (see [`min_payload`]), returning the payload.
    pub fn expect_segment(&mut self, expect: u16) -> Result<&'a [u8], ParseError> {
        self.expect_marker(expect)?;
        let len_offset = self.pos;
        let len = match self.data.get(len_offset..len_offset.saturating_add(2)) {
            Some(&[a, b]) => u16::from_be_bytes([a, b]) as usize,
            _ => {
                return Err(ParseError::TruncatedLength {
                    marker: expect,
                    offset: len_offset,
                });
            }
        };
        // The length field includes its own two bytes; a shorter value can
        // never describe a real segment, and the end must lie in-bounds.
        let payload = len
            .checked_sub(2)
            .and_then(|plen| {
                let start = len_offset.checked_add(2)?;
                let end = start.checked_add(plen)?;
                self.data.get(start..end)
            })
            .ok_or(ParseError::BadSegmentLength {
                marker: expect,
                len,
                offset: len_offset,
            })?;
        let min = min_payload(expect);
        if payload.len() < min {
            return Err(ParseError::ShortPayload {
                marker: expect,
                len: payload.len(),
                min,
                offset: len_offset.saturating_add(2),
            });
        }
        self.pos = len_offset.saturating_add(len);
        Ok(payload)
    }

    /// Consume `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        let out = self
            .pos
            .checked_add(n)
            .and_then(|end| self.data.get(self.pos..end))
            .ok_or(ParseError::TruncatedBody {
                wanted: n,
                available: self.data.len().saturating_sub(self.pos),
                offset: self.pos,
            })?;
        self.pos = self.pos.saturating_add(n);
        Ok(out)
    }
}

/// Growable big-endian payload builder.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    out: Vec<u8>,
}

impl PayloadWriter {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a byte.
    // AUDIT(hot): one amortized byte push per marker field — header-size work.
    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Append a big-endian u16.
    // AUDIT(hot): amortized append, header/marker fields only.
    pub fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    // AUDIT(hot): amortized append, header/marker fields only.
    pub fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    // AUDIT(hot): amortized append, header/marker fields only.
    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    /// Append an f64 (IEEE-754 bits, big-endian).
    // AUDIT(hot): amortized append, header/marker fields only.
    pub fn f64(&mut self, v: f64) {
        self.out.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    /// Finish the payload.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }
}

/// Cursor over a payload written by [`PayloadWriter`].
#[derive(Debug)]
pub struct PayloadReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Read from `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], ParseError> {
        let bytes = self
            .pos
            .checked_add(N)
            .and_then(|end| self.data.get(self.pos..end))
            .ok_or(ParseError::TruncatedPayload { offset: self.pos })?;
        // AUDIT: `bytes` is exactly `N` long (taken with an `N`-wide
        // range), so the slice-to-array conversion is infallible.
        // lint:allow(hot_path_panic) -- `bytes` has exactly N elements, so
        // the conversion cannot fail.
        let arr: [u8; N] = bytes.try_into().expect("length-checked slice");
        self.pos = self.pos.saturating_add(N);
        Ok(arr)
    }

    /// Read a byte.
    pub fn u8(&mut self) -> Result<u8, ParseError> {
        Ok(u8::from_be_bytes(self.take::<1>()?))
    }

    /// Read a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, ParseError> {
        Ok(u16::from_be_bytes(self.take::<2>()?))
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, ParseError> {
        Ok(u32::from_be_bytes(self.take::<4>()?))
    }

    /// Read a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, ParseError> {
        Ok(u64::from_be_bytes(self.take::<8>()?))
    }

    /// Read an f64.
    pub fn f64(&mut self) -> Result<f64, ParseError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// True when the whole payload has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;

    #[test]
    fn marker_segment_roundtrip() {
        let mut w = MarkerWriter::new();
        w.marker(SOC);
        w.segment(SIZ, &[1; 19]);
        w.segment(COM, b"pj2k");
        w.raw(&[9, 9, 9]);
        w.marker(EOC);
        let bytes = w.finish();

        let mut r = MarkerReader::new(&bytes);
        r.expect_marker(SOC).unwrap();
        assert_eq!(r.expect_segment(SIZ).unwrap(), &[1; 19]);
        assert_eq!(r.expect_segment(COM).unwrap(), b"pj2k");
        assert_eq!(r.raw(3).unwrap(), &[9, 9, 9]);
        r.expect_marker(EOC).unwrap();
    }

    #[test]
    fn wrong_marker_is_error() {
        let mut w = MarkerWriter::new();
        w.marker(SOC);
        let bytes = w.finish();
        let mut r = MarkerReader::new(&bytes);
        let err = r.expect_marker(EOC).unwrap_err();
        assert_eq!(
            err,
            ParseError::UnexpectedMarker {
                expected: EOC,
                got: SOC,
                offset: 0
            }
        );
        assert_eq!(err.marker(), Some(SOC));
        assert_eq!(err.offset(), 0);
    }

    #[test]
    fn truncated_stream_is_error() {
        let r = MarkerReader::new(&[0xFF]);
        assert_eq!(
            r.peek_marker().unwrap_err(),
            ParseError::TruncatedMarker { offset: 0 }
        );
        let mut r2 = MarkerReader::new(&[0xFF, 0x64, 0x00]);
        assert_eq!(
            r2.expect_segment(COM).unwrap_err(),
            ParseError::TruncatedLength {
                marker: COM,
                offset: 2
            }
        );
    }

    #[test]
    fn bad_segment_lengths_are_errors() {
        // Length 1 is impossible (the field includes itself).
        let mut r = MarkerReader::new(&[0xFF, 0x64, 0x00, 0x01]);
        assert_eq!(
            r.expect_segment(COM).unwrap_err(),
            ParseError::BadSegmentLength {
                marker: COM,
                len: 1,
                offset: 2
            }
        );
        // Length runs past the end of the stream.
        let mut r = MarkerReader::new(&[0xFF, 0x64, 0x00, 0x09, 0xAA]);
        assert_eq!(
            r.expect_segment(COM).unwrap_err(),
            ParseError::BadSegmentLength {
                marker: COM,
                len: 9,
                offset: 2
            }
        );
    }

    #[test]
    fn short_fixed_payloads_are_rejected() {
        // An empty COD segment (len == 2) must error before any payload
        // field is read — regression for the zero-length-segment bug.
        for (marker, min) in [(COD, 9), (QCD, 8), (SIZ, 19), (SOT, 8)] {
            let mut w = MarkerWriter::new();
            w.segment(marker, &[]);
            let bytes = w.finish();
            let mut r = MarkerReader::new(&bytes);
            assert_eq!(
                r.expect_segment(marker).unwrap_err(),
                ParseError::ShortPayload {
                    marker,
                    len: 0,
                    min,
                    offset: 4
                },
                "marker {marker:#06X}"
            );
            // One byte short of the minimum is still rejected.
            let mut w = MarkerWriter::new();
            w.segment(marker, &vec![0u8; min - 1]);
            let bytes = w.finish();
            let mut r = MarkerReader::new(&bytes);
            assert!(matches!(
                r.expect_segment(marker).unwrap_err(),
                ParseError::ShortPayload { .. }
            ));
            // Exactly the minimum is accepted.
            let mut w = MarkerWriter::new();
            w.segment(marker, &vec![0u8; min]);
            let bytes = w.finish();
            let mut r = MarkerReader::new(&bytes);
            assert_eq!(r.expect_segment(marker).unwrap().len(), min);
        }
        // COM segments may be empty.
        let mut w = MarkerWriter::new();
        w.segment(COM, &[]);
        let bytes = w.finish();
        let mut r = MarkerReader::new(&bytes);
        assert_eq!(r.expect_segment(COM).unwrap(), &[] as &[u8]);
    }

    #[test]
    fn oversized_raw_is_error() {
        let mut r = MarkerReader::new(&[1, 2]);
        assert_eq!(
            r.raw(3).unwrap_err(),
            ParseError::TruncatedBody {
                wanted: 3,
                available: 2,
                offset: 0
            }
        );
        assert_eq!(r.raw(2).unwrap(), &[1, 2]);
    }

    #[test]
    fn raw_overflowing_request_is_error_not_panic() {
        let mut r = MarkerReader::new(&[1, 2, 3]);
        assert!(r.raw(usize::MAX).is_err());
        assert!(r.raw(usize::MAX - 1).is_err());
    }

    #[test]
    fn payload_roundtrip() {
        let mut p = PayloadWriter::new();
        p.u8(7);
        p.u16(65535);
        p.u32(123_456_789);
        p.u64(1 << 40);
        p.f64(-0.125);
        let bytes = p.finish();
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65535);
        assert_eq!(r.u32().unwrap(), 123_456_789);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.is_done());
        assert_eq!(
            r.u8().unwrap_err(),
            ParseError::TruncatedPayload { offset: 23 }
        );
    }

    #[test]
    fn segment_length_includes_itself() {
        let mut w = MarkerWriter::new();
        w.segment(COD, &[0xAA; 10]);
        let bytes = w.finish();
        // marker (2) + length (2) + payload (10)
        assert_eq!(bytes.len(), 14);
        assert_eq!(u16::from_be_bytes([bytes[2], bytes[3]]), 12);
    }

    #[test]
    fn errors_render_marker_and_offset() {
        let e = ParseError::ShortPayload {
            marker: QCD,
            len: 0,
            min: 8,
            offset: 12,
        };
        let text = e.to_string();
        assert!(text.contains("0xFF5C"), "{text}");
        assert!(text.contains("offset 12"), "{text}");
    }
}
