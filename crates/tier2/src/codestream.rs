//! Codestream container: marker segments and payload (de)serialization.
//!
//! The container borrows the ISO 15444-1 marker architecture — a `SOC`
//! start marker, parameter marker segments with explicit big-endian
//! lengths, tile-part data after `SOD`, and a trailing `EOC` — but the
//! payload layouts are pj2k's own (see DESIGN.md §5: no byte-level ISO
//! interop is claimed). Marker codes reuse the standard values so
//! hex-dumped streams look familiar.

/// Start of codestream.
pub const SOC: u16 = 0xFF4F;
/// Image and tile size parameters.
pub const SIZ: u16 = 0xFF51;
/// Coding style (wavelet, levels, code-block size, layers).
pub const COD: u16 = 0xFF52;
/// Quantization parameters.
pub const QCD: u16 = 0xFF5C;
/// Start of tile-part header.
pub const SOT: u16 = 0xFF90;
/// Start of tile data (followed by raw packet bytes with explicit length).
pub const SOD: u16 = 0xFF93;
/// Comment segment.
pub const COM: u16 = 0xFF64;
/// End of codestream.
pub const EOC: u16 = 0xFFD9;

/// Error raised while parsing a codestream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codestream parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Serializer for marker segments and their payloads.
#[derive(Debug, Default)]
pub struct MarkerWriter {
    out: Vec<u8>,
}

impl MarkerWriter {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit a bare marker (no length, no payload): `SOC`, `EOC`.
    pub fn marker(&mut self, code: u16) {
        self.out.extend_from_slice(&code.to_be_bytes());
    }

    /// Emit a marker segment: marker, 2-byte length (payload + 2), payload.
    ///
    /// # Panics
    /// Panics if the payload exceeds the 16-bit length field.
    pub fn segment(&mut self, code: u16, payload: &[u8]) {
        assert!(
            payload.len() + 2 <= u16::MAX as usize,
            "marker payload too long"
        );
        self.marker(code);
        self.out
            .extend_from_slice(&((payload.len() as u16 + 2).to_be_bytes()));
        self.out.extend_from_slice(payload);
    }

    /// Emit raw bytes (tile body data after `SOD`).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    /// Finish and return the stream.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }

    /// Bytes emitted so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

/// Parser for marker streams written by [`MarkerWriter`].
#[derive(Debug)]
pub struct MarkerReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> MarkerReader<'a> {
    /// Parse from `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Peek the next marker code without consuming it.
    pub fn peek_marker(&self) -> Result<u16, ParseError> {
        if self.pos + 2 > self.data.len() {
            return Err(ParseError("truncated marker".into()));
        }
        Ok(u16::from_be_bytes([
            self.data[self.pos],
            self.data[self.pos + 1],
        ]))
    }

    /// Consume a bare marker, checking it equals `expect`.
    pub fn expect_marker(&mut self, expect: u16) -> Result<(), ParseError> {
        let got = self.peek_marker()?;
        if got != expect {
            return Err(ParseError(format!(
                "expected marker {expect:#06X}, got {got:#06X}"
            )));
        }
        self.pos += 2;
        Ok(())
    }

    /// Consume a marker segment, checking the marker code, returning the
    /// payload.
    pub fn expect_segment(&mut self, expect: u16) -> Result<&'a [u8], ParseError> {
        self.expect_marker(expect)?;
        if self.pos + 2 > self.data.len() {
            return Err(ParseError("truncated segment length".into()));
        }
        let len = u16::from_be_bytes([self.data[self.pos], self.data[self.pos + 1]]) as usize;
        if len < 2 || self.pos + len > self.data.len() {
            return Err(ParseError(format!("bad segment length {len}")));
        }
        let payload = &self.data[self.pos + 2..self.pos + len];
        self.pos += len;
        Ok(payload)
    }

    /// Consume `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        if self.pos + n > self.data.len() {
            return Err(ParseError(format!("truncated body: wanted {n} bytes")));
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

/// Growable big-endian payload builder.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    out: Vec<u8>,
}

impl PayloadWriter {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a byte.
    pub fn u8(&mut self, v: u8) {
        self.out.push(v);
    }

    /// Append a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_be_bytes());
    }

    /// Append an f64 (IEEE-754 bits, big-endian).
    pub fn f64(&mut self, v: f64) {
        self.out.extend_from_slice(&v.to_bits().to_be_bytes());
    }

    /// Finish the payload.
    pub fn finish(self) -> Vec<u8> {
        self.out
    }
}

/// Cursor over a payload written by [`PayloadWriter`].
#[derive(Debug)]
pub struct PayloadReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Read from `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ParseError> {
        if self.pos + n > self.data.len() {
            return Err(ParseError("truncated payload".into()));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a byte.
    pub fn u8(&mut self) -> Result<u8, ParseError> {
        Ok(self.take(1)?[0])
    }

    /// Read a big-endian u16.
    pub fn u16(&mut self) -> Result<u16, ParseError> {
        // lint:allow(hot_path_panic) -- `take` returned exactly 2 bytes,
        // so the slice-to-array conversion is infallible.
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, ParseError> {
        // lint:allow(hot_path_panic) -- `take` returned exactly 4 bytes,
        // so the slice-to-array conversion is infallible.
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, ParseError> {
        // lint:allow(hot_path_panic) -- `take` returned exactly 8 bytes,
        // so the slice-to-array conversion is infallible.
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an f64.
    pub fn f64(&mut self) -> Result<f64, ParseError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// True when the whole payload has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos == self.data.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_segment_roundtrip() {
        let mut w = MarkerWriter::new();
        w.marker(SOC);
        w.segment(SIZ, &[1, 2, 3, 4]);
        w.segment(COM, b"pj2k");
        w.raw(&[9, 9, 9]);
        w.marker(EOC);
        let bytes = w.finish();

        let mut r = MarkerReader::new(&bytes);
        r.expect_marker(SOC).unwrap();
        assert_eq!(r.expect_segment(SIZ).unwrap(), &[1, 2, 3, 4]);
        assert_eq!(r.expect_segment(COM).unwrap(), b"pj2k");
        assert_eq!(r.raw(3).unwrap(), &[9, 9, 9]);
        r.expect_marker(EOC).unwrap();
    }

    #[test]
    fn wrong_marker_is_error() {
        let mut w = MarkerWriter::new();
        w.marker(SOC);
        let bytes = w.finish();
        let mut r = MarkerReader::new(&bytes);
        let err = r.expect_marker(EOC).unwrap_err();
        assert!(err.0.contains("expected marker"));
    }

    #[test]
    fn truncated_stream_is_error() {
        let r = MarkerReader::new(&[0xFF]);
        assert!(r.peek_marker().is_err());
        let mut r2 = MarkerReader::new(&[0xFF, 0x51, 0x00]);
        assert!(r2.expect_segment(SIZ).is_err());
    }

    #[test]
    fn oversized_raw_is_error() {
        let mut r = MarkerReader::new(&[1, 2]);
        assert!(r.raw(3).is_err());
        assert_eq!(r.raw(2).unwrap(), &[1, 2]);
    }

    #[test]
    fn payload_roundtrip() {
        let mut p = PayloadWriter::new();
        p.u8(7);
        p.u16(65535);
        p.u32(123_456_789);
        p.u64(1 << 40);
        p.f64(-0.125);
        let bytes = p.finish();
        let mut r = PayloadReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 65535);
        assert_eq!(r.u32().unwrap(), 123_456_789);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert!(r.is_done());
        assert!(r.u8().is_err());
    }

    #[test]
    fn segment_length_includes_itself() {
        let mut w = MarkerWriter::new();
        w.segment(COD, &[0xAA; 10]);
        let bytes = w.finish();
        // marker (2) + length (2) + payload (10)
        assert_eq!(bytes.len(), 14);
        assert_eq!(u16::from_be_bytes([bytes[2], bytes[3]]), 12);
    }
}
