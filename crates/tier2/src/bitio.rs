//! Packet-header bit I/O with JPEG2000 bit stuffing.
//!
//! Packet headers are a raw bit stream with one rule (ISO B.10.1): a byte
//! that reads `0xFF` is followed by a byte whose most significant bit is 0
//! (only 7 payload bits), so header bytes can never form a marker. The
//! writer byte-aligns on `finish`, emitting a mandatory stuffing bit if the
//! last full byte was `0xFF`.
//!
//! The reader is on the untrusted-input boundary (DESIGN.md §9): it never
//! indexes unchecked and feeds zero bits past the end of the data, so no
//! input can make it panic — headers are self-delimiting and corruption
//! surfaces as wrong decoded values, handled one layer up.

#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

/// Bit-level writer with `0xFF` stuffing.
#[derive(Debug, Default)]
pub struct HeaderBitWriter {
    out: Vec<u8>,
    acc: u16,
    /// Bits currently available in the byte being assembled (7 after an
    /// `0xFF`, else 8).
    nbits: u8,
    filled: u8,
}

impl HeaderBitWriter {
    /// Fresh writer.
    // AUDIT(hot): one empty Vec per packet header — setup-time.
    pub fn new() -> Self {
        Self {
            out: Vec::new(),
            acc: 0,
            nbits: 8,
            filled: 0,
        }
    }

    /// Append one bit.
    // AUDIT(fn): encoder side; `filled` is reset whenever it reaches
    // `nbits <= 8`, so the increment and the shift cannot overflow.
    #[allow(clippy::arithmetic_side_effects)]
    pub fn put_bit(&mut self, bit: u8) {
        debug_assert!(bit <= 1);
        self.acc = (self.acc << 1) | u16::from(bit);
        self.filled += 1;
        if self.filled == self.nbits {
            let byte = self.acc as u8;
            self.out.push(byte);
            self.acc = 0;
            self.filled = 0;
            self.nbits = if byte == 0xFF { 7 } else { 8 };
        }
    }

    /// Append the low `n` bits of `v`, most significant first.
    pub fn put_bits(&mut self, v: u32, n: u8) {
        for k in (0..n).rev() {
            self.put_bit(((v >> k) & 1) as u8);
        }
    }

    /// Byte-align (zero padding) and return the header bytes.
    pub fn finish(mut self) -> Vec<u8> {
        while self.filled != 0 {
            self.put_bit(0);
        }
        // A trailing 0xFF must be followed by a stuffing byte so the next
        // codestream byte cannot complete a marker.
        if self.out.last() == Some(&0xFF) {
            self.out.push(0);
        }
        self.out
    }

    /// Bits written so far (excluding alignment padding).
    // AUDIT(fn): encoder side; header byte counts are far below
    // usize::MAX / 8.
    #[allow(clippy::arithmetic_side_effects)]
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + usize::from(self.filled)
    }
}

/// Bit-level reader matching [`HeaderBitWriter`].
#[derive(Debug)]
pub struct HeaderBitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u8,
    left: u8,
    prev_ff: bool,
}

impl<'a> HeaderBitReader<'a> {
    /// Read from `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            left: 0,
            prev_ff: false,
        }
    }

    /// Read one bit; 0 past the end (headers are self-delimiting).
    // AUDIT(fn): decode path, but panic-free on any input — the byte fetch
    // is a checked `get` with a zero fallback, `pos` advances saturating,
    // and `left` is refilled to 7 or 8 before the decrement.
    #[allow(clippy::arithmetic_side_effects)]
    pub fn get_bit(&mut self) -> u8 {
        if self.left == 0 {
            let byte = self.data.get(self.pos).copied().unwrap_or(0);
            self.pos = self.pos.saturating_add(1);
            self.left = if self.prev_ff { 7 } else { 8 };
            self.prev_ff = byte == 0xFF;
            self.acc = if self.left == 7 { byte << 1 } else { byte };
        }
        let bit = (self.acc >> 7) & 1;
        self.acc <<= 1;
        self.left -= 1;
        bit
    }

    /// Read `n` bits, most significant first.
    pub fn get_bits(&mut self, n: u8) -> u32 {
        let mut v = 0;
        for _ in 0..n {
            v = (v << 1) | u32::from(self.get_bit());
        }
        v
    }

    /// Bytes consumed, counting the partially read byte.
    pub fn bytes_consumed(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_bits() {
        let mut w = HeaderBitWriter::new();
        let pattern: Vec<u8> = (0..50).map(|i| ((i * 3) % 2) as u8).collect();
        for &b in &pattern {
            w.put_bit(b);
        }
        let bytes = w.finish();
        let mut r = HeaderBitReader::new(&bytes);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(r.get_bit(), b, "bit {i}");
        }
    }

    #[test]
    fn stuffing_after_ff() {
        // Write 8 one-bits -> 0xFF; the next byte must carry only 7 bits.
        let mut w = HeaderBitWriter::new();
        for _ in 0..8 {
            w.put_bit(1);
        }
        w.put_bits(0b1010101, 7); // exactly fills the stuffed byte
        let bytes = w.finish();
        assert_eq!(bytes[0], 0xFF);
        assert_eq!(bytes[1] & 0x80, 0, "bit after 0xFF must be stuffed to 0");
        let mut r = HeaderBitReader::new(&bytes);
        assert_eq!(r.get_bits(8), 0xFF);
        assert_eq!(r.get_bits(7), 0b1010101);
    }

    #[test]
    fn trailing_ff_gets_stuffing_byte() {
        let mut w = HeaderBitWriter::new();
        w.put_bits(0xFF, 8);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0xFF, 0x00]);
    }

    #[test]
    fn multibit_values_roundtrip() {
        let vals: Vec<(u32, u8)> = vec![
            (5, 3),
            (0xFFFF, 16),
            (1, 1),
            (0, 4),
            (123456, 20),
            (0xFF, 8),
            (0x7F, 7),
        ];
        let mut w = HeaderBitWriter::new();
        for &(v, n) in &vals {
            w.put_bits(v, n);
        }
        let bytes = w.finish();
        let mut r = HeaderBitReader::new(&bytes);
        for &(v, n) in &vals {
            assert_eq!(r.get_bits(n), v, "{v}:{n}");
        }
    }

    #[test]
    fn no_marker_bytes_in_stream() {
        // Adversarial all-ones payload cannot produce 0xFF followed by a
        // high byte.
        let mut w = HeaderBitWriter::new();
        for _ in 0..200 {
            w.put_bit(1);
        }
        let bytes = w.finish();
        for pair in bytes.windows(2) {
            if pair[0] == 0xFF {
                assert!(pair[1] < 0x80, "{pair:?}");
            }
        }
    }

    #[test]
    fn bit_len_counts() {
        let mut w = HeaderBitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put_bits(0, 5);
        assert_eq!(w.bit_len(), 5);
        w.put_bits(0, 5);
        assert_eq!(w.bit_len(), 10);
    }

    #[test]
    fn reader_past_end_returns_zero() {
        let mut r = HeaderBitReader::new(&[0b1000_0000]);
        assert_eq!(r.get_bit(), 1);
        for _ in 0..20 {
            assert_eq!(r.get_bit(), 0);
        }
    }
}
