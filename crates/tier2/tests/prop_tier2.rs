//! Property tests: tag trees, packet headers and PCRD under arbitrary
//! inputs.

use pj2k_tier2::bitio::{HeaderBitReader, HeaderBitWriter};
use pj2k_tier2::pcrd::BlockRd;
use pj2k_tier2::{allocate_layers, decode_packet, encode_packet, PrecinctState, TagTree};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Header bit I/O round-trips arbitrary bit sequences through the
    /// stuffing rule.
    #[test]
    fn bitio_roundtrip(bits in proptest::collection::vec(0u8..2, 0..500)) {
        let mut w = HeaderBitWriter::new();
        for &b in &bits {
            w.put_bit(b);
        }
        let bytes = w.finish();
        // stuffing invariant
        for pair in bytes.windows(2) {
            if pair[0] == 0xFF {
                prop_assert!(pair[1] < 0x80);
            }
        }
        let mut r = HeaderBitReader::new(&bytes);
        for &b in &bits {
            prop_assert_eq!(r.get_bit(), b);
        }
    }

    /// Tag trees reveal every leaf value exactly, for arbitrary grids.
    #[test]
    fn tagtree_roundtrip(
        w in 1usize..9,
        h in 1usize..9,
        seed in any::<u64>(),
        max_v in 1u32..12,
    ) {
        let mut state = seed | 1;
        let values: Vec<u32> = (0..w * h)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 40) as u32 % max_v
            })
            .collect();
        let mut enc = TagTree::new(w, h);
        for y in 0..h {
            for x in 0..w {
                enc.set_value(x, y, values[y * w + x]);
            }
        }
        enc.finalize();
        let mut writer = HeaderBitWriter::new();
        for y in 0..h {
            for x in 0..w {
                for t in 1..=values[y * w + x] + 1 {
                    enc.encode(x, y, t, &mut writer);
                }
            }
        }
        let bytes = writer.finish();
        let mut dec = TagTree::new(w, h);
        let mut reader = HeaderBitReader::new(&bytes);
        for y in 0..h {
            for x in 0..w {
                let mut t = 1;
                while !dec.decode(x, y, t, &mut reader) {
                    t += 1;
                    prop_assert!(t <= max_v + 2);
                }
                prop_assert_eq!(dec.leaf_value(x, y), values[y * w + x]);
            }
        }
    }

    /// PCRD hulls have strictly decreasing slopes and allocations respect
    /// budgets, for arbitrary monotone trajectories.
    #[test]
    fn pcrd_invariants(
        blocks_raw in proptest::collection::vec(
            proptest::collection::vec((1usize..60, 0.0f64..100.0), 0..8),
            1..6,
        ),
        budget in 0usize..600,
    ) {
        let blocks: Vec<BlockRd> = blocks_raw
            .iter()
            .map(|steps| {
                let mut r = 0usize;
                let mut d = 0f64;
                let mut rates = Vec::new();
                let mut dists = Vec::new();
                for &(dr, dd) in steps {
                    r += dr;
                    d += dd;
                    rates.push(r);
                    dists.push(d);
                }
                BlockRd { rates, dists }
            })
            .collect();
        // Hull slopes strictly decrease.
        for b in &blocks {
            let hull = b.hull();
            let mut prev_slope = f64::INFINITY;
            let (mut pr, mut pd) = (0.0, 0.0);
            for &n in &hull {
                let (r, d) = (b.rates[n - 1] as f64, b.dists[n - 1]);
                let s = (d - pd) / (r - pr);
                prop_assert!(s < prev_slope + 1e-12, "slope {} after {}", s, prev_slope);
                prop_assert!(s > 0.0);
                prev_slope = s;
                pr = r;
                pd = d;
            }
        }
        // Allocation respects the budget and only uses hull points.
        let alloc = &allocate_layers(&blocks, &[budget])[0];
        let mut spent = 0;
        for (b, &n) in alloc.iter().enumerate() {
            if n > 0 {
                prop_assert!(blocks[b].hull().contains(&n), "non-hull point {}", n);
                spent += blocks[b].rates[n - 1];
            }
        }
        prop_assert!(spent <= budget, "spent {} > {}", spent, budget);
    }

    /// Multi-layer packet headers round-trip arbitrary (monotone)
    /// allocations.
    #[test]
    fn packet_roundtrip(
        gw in 1usize..4,
        gh in 1usize..4,
        seed in any::<u64>(),
        n_layers in 1usize..4,
    ) {
        let n = gw * gh;
        let mut state = seed | 1;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        // Per block: total passes and their segment lengths.
        let pass_lens: Vec<Vec<usize>> = (0..n)
            .map(|_| {
                let total = rng() % 12;
                (0..total).map(|_| 1 + rng() % 300).collect()
            })
            .collect();
        // Monotone cumulative allocation per layer.
        let mut alloc = vec![vec![0usize; n]; n_layers];
        for b in 0..n {
            let mut cur = 0;
            for layer in alloc.iter_mut() {
                cur = (cur + rng() % 4).min(pass_lens[b].len());
                layer[b] = cur;
            }
        }
        let zbp: Vec<u32> = (0..n).map(|_| (rng() % 10) as u32).collect();
        let first_layer: Vec<u32> = (0..n)
            .map(|b| {
                alloc
                    .iter()
                    .position(|l| l[b] > 0)
                    .map_or(n_layers as u32, |p| p as u32)
            })
            .collect();
        let mut enc = PrecinctState::for_encoder(gw, gh, &first_layer, &zbp);
        let mut dec = PrecinctState::for_decoder(gw, gh);
        for (l, upto) in alloc.iter().enumerate() {
            let hdr = encode_packet(&mut enc, l, upto, &pass_lens);
            let (results, _) = decode_packet(&mut dec, l, &hdr).unwrap();
            for (b, res) in results.iter().enumerate() {
                let prev = if l == 0 { 0 } else { alloc[l - 1][b] };
                prop_assert_eq!(res.prev_passes, prev, "layer {} block {}", l, b);
                prop_assert_eq!(res.new_passes, upto[b] - prev, "layer {} block {}", l, b);
                prop_assert_eq!(
                    &res.seg_lens[..],
                    &pass_lens[b][prev..upto[b]],
                    "layer {} block {}", l, b
                );
                if upto[b] > 0 {
                    prop_assert_eq!(res.zero_bitplanes, zbp[b]);
                }
            }
        }
    }
}
