//! Baseline JPEG encode/decode pipeline.

use crate::bitstream::{BitReader, BitWriter};
use crate::dct;
use crate::huffman::HuffTable;
use crate::tables::{scaled, CHROMA_Q50, LUMA_Q50, ZIGZAG};
use pj2k_image::transform::{
    dc_level_shift_forward, dc_level_shift_inverse, ict_forward, ict_inverse,
};
use pj2k_image::{Image, Plane};

const SOI: u16 = 0xFFD8;
const SOF: u16 = 0xFFC0;
const DQT: u16 = 0xFFDB;
const DHT: u16 = 0xFFC4;
const SOS: u16 = 0xFFDA;
const EOI: u16 = 0xFFD9;

/// Baseline-JPEG codec failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JpegError(pub String);

impl std::fmt::Display for JpegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "jpeg error: {}", self.0)
    }
}

impl std::error::Error for JpegError {}

/// Magnitude category: bits needed for `|v|`.
#[inline]
fn category(v: i32) -> u32 {
    32 - v.unsigned_abs().leading_zeros()
}

/// JPEG-style extra bits for a value in category `cat`.
#[inline]
fn extra_bits(v: i32, cat: u32) -> u32 {
    if v >= 0 {
        v as u32
    } else {
        (v + (1 << cat) - 1) as u32
    }
}

#[inline]
fn from_extra_bits(raw: u32, cat: u32) -> i32 {
    if cat == 0 {
        0
    } else if raw < (1 << (cat - 1)) {
        raw as i32 - (1 << cat) + 1
    } else {
        raw as i32
    }
}

/// Quantized coefficient blocks of one component, in raster block order,
/// zig-zag within each block.
fn component_blocks(plane: &Plane<f32>, qtab: &[u16; 64]) -> Vec<[i32; 64]> {
    let (w, h) = (plane.width(), plane.height());
    let bw = w.div_ceil(8);
    let bh = h.div_ceil(8);
    let mut out = Vec::with_capacity(bw * bh);
    let mut block = [0f32; 64];
    for by in 0..bh {
        for bx in 0..bw {
            for dy in 0..8 {
                let y = (by * 8 + dy).min(h - 1); // edge replication
                for dx in 0..8 {
                    let x = (bx * 8 + dx).min(w - 1);
                    block[dy * 8 + dx] = plane.get(x, y);
                }
            }
            dct::forward(&mut block);
            let mut q = [0i32; 64];
            for (k, slot) in q.iter_mut().enumerate() {
                let idx = ZIGZAG[k];
                let step = f32::from(qtab[idx]);
                *slot = (block[idx] / step).round() as i32;
            }
            out.push(q);
        }
    }
    out
}

/// One entropy symbol: (Huffman symbol, extra-bit value, extra-bit count).
type Sym = (u8, u32, u32);

/// Symbol streams of one component (for frequency gathering and encoding).
fn block_symbols(blocks: &[[i32; 64]]) -> (Vec<Sym>, Vec<Sym>) {
    let mut dc = Vec::with_capacity(blocks.len());
    let mut ac = Vec::new();
    let mut pred = 0i32;
    for b in blocks {
        let diff = b[0] - pred;
        pred = b[0];
        let cat = category(diff);
        dc.push((cat as u8, extra_bits(diff, cat), cat));
        let mut run = 0u32;
        for &v in &b[1..] {
            if v == 0 {
                run += 1;
                continue;
            }
            while run > 15 {
                ac.push((0xF0, 0, 0)); // ZRL
                run -= 16;
            }
            let size = category(v);
            ac.push((((run << 4) as u8) | size as u8, extra_bits(v, size), size));
            run = 0;
        }
        if run > 0 {
            ac.push((0x00, 0, 0)); // EOB
        }
    }
    (dc, ac)
}

fn seg(out: &mut Vec<u8>, marker: u16, payload: &[u8]) {
    out.extend_from_slice(&marker.to_be_bytes());
    out.extend_from_slice(&((payload.len() as u32).to_be_bytes()));
    out.extend_from_slice(payload);
}

/// Encode `img` (1 or 3 components, 8-bit) at `quality` (1..=100).
///
/// # Errors
/// Returns [`JpegError`] for unsupported component counts.
pub fn encode(img: &Image, quality: u8) -> Result<Vec<u8>, JpegError> {
    let ncomp = img.num_components();
    if ncomp != 1 && ncomp != 3 {
        return Err(JpegError(format!("{ncomp} components unsupported")));
    }
    // Color transform + level shift.
    let mut work = img.clone();
    dc_level_shift_forward(&mut work);
    let mut planes: Vec<Plane<f32>> = (0..ncomp)
        .map(|c| work.component(c).map(|v| v as f32))
        .collect();
    if ncomp == 3 {
        let (a, rest) = planes.split_at_mut(1);
        let (b, c) = rest.split_at_mut(1);
        ict_forward(&mut a[0], &mut b[0], &mut c[0]);
    }
    let qlum = scaled(&LUMA_Q50, quality);
    let qchr = scaled(&CHROMA_Q50, quality);
    let comp_blocks: Vec<Vec<[i32; 64]>> = planes
        .iter()
        .enumerate()
        .map(|(c, p)| component_blocks(p, if c == 0 { &qlum } else { &qchr }))
        .collect();

    // Gather per-class symbol statistics (luma tables for component 0,
    // chroma tables shared by the rest).
    let mut dc_freq = [[0u64; 256]; 2];
    let mut ac_freq = [[0u64; 256]; 2];
    let mut streams = Vec::new();
    for (c, blocks) in comp_blocks.iter().enumerate() {
        let class = usize::from(c > 0);
        let (dc, ac) = block_symbols(blocks);
        for &(s, _, _) in &dc {
            dc_freq[class][s as usize] += 1;
        }
        for &(s, _, _) in &ac {
            ac_freq[class][s as usize] += 1;
        }
        streams.push((class, dc, ac));
    }
    let n_classes = if ncomp == 1 { 1 } else { 2 };
    let dc_tables: Vec<HuffTable> = (0..n_classes)
        .map(|k| HuffTable::optimized(&dc_freq[k]))
        .collect();
    let ac_tables: Vec<HuffTable> = (0..n_classes)
        .map(|k| HuffTable::optimized(&ac_freq[k]))
        .collect();

    // Entropy-coded segment: components sequentially, DC/AC interleaved per
    // block within a component.
    let mut w = BitWriter::new();
    for (class, dc, ac) in &streams {
        let dct_ = &dc_tables[*class];
        let act = &ac_tables[*class];
        let mut ac_iter = ac.iter();
        let blocks = dc.len();
        // Reconstruct per-block AC grouping by replaying EOB/coefficient
        // structure: we instead emit by re-walking the block list.
        let _ = blocks;
        for &(s, v, n) in dc {
            dct_.encode(&mut w, s);
            w.put(v, n);
            // Emit AC symbols until (and including) this block's EOB or
            // until 63 coefficients are covered.
            let mut covered = 0u32;
            while covered < 63 {
                let &(sym, val, len) = match ac_iter.next() {
                    Some(t) => t,
                    None => break,
                };
                act.encode(&mut w, sym);
                w.put(val, len);
                if sym == 0x00 {
                    break; // EOB
                } else if sym == 0xF0 {
                    covered += 16;
                } else {
                    covered += (sym >> 4) as u32 + 1;
                }
            }
        }
    }
    let scan = w.finish();

    // Container.
    let mut out = Vec::new();
    out.extend_from_slice(&SOI.to_be_bytes());
    let mut sof = Vec::new();
    sof.extend_from_slice(&(img.width() as u32).to_be_bytes());
    sof.extend_from_slice(&(img.height() as u32).to_be_bytes());
    sof.push(ncomp as u8);
    sof.push(quality);
    seg(&mut out, SOF, &sof);
    let mut dqt = Vec::new();
    for t in [&qlum, &qchr] {
        for &v in t.iter() {
            dqt.extend_from_slice(&v.to_be_bytes());
        }
    }
    seg(&mut out, DQT, &dqt);
    let mut dht = Vec::new();
    dht.push(n_classes as u8);
    for k in 0..n_classes {
        dht.extend_from_slice(&dc_tables[k].to_bytes());
        dht.extend_from_slice(&ac_tables[k].to_bytes());
    }
    seg(&mut out, DHT, &dht);
    seg(&mut out, SOS, &scan);
    out.extend_from_slice(&EOI.to_be_bytes());
    Ok(out)
}

fn expect_seg<'a>(data: &'a [u8], pos: &mut usize, marker: u16) -> Result<&'a [u8], JpegError> {
    if *pos + 6 > data.len() {
        return Err(JpegError("truncated stream".into()));
    }
    let m = u16::from_be_bytes([data[*pos], data[*pos + 1]]);
    if m != marker {
        return Err(JpegError(format!("expected {marker:#06X}, got {m:#06X}")));
    }
    let len = u32::from_be_bytes(data[*pos + 2..*pos + 6].try_into().unwrap()) as usize;
    if *pos + 6 + len > data.len() {
        return Err(JpegError("truncated segment".into()));
    }
    let payload = &data[*pos + 6..*pos + 6 + len];
    *pos += 6 + len;
    Ok(payload)
}

/// Decode a [`encode`]-produced stream.
///
/// # Errors
/// Returns [`JpegError`] on malformed input.
pub fn decode(data: &[u8]) -> Result<Image, JpegError> {
    if data.len() < 4 || data[..2] != SOI.to_be_bytes() {
        return Err(JpegError("missing SOI".into()));
    }
    let mut pos = 2;
    let sof = expect_seg(data, &mut pos, SOF)?;
    if sof.len() < 10 {
        return Err(JpegError("short SOF".into()));
    }
    let width = u32::from_be_bytes(sof[0..4].try_into().unwrap()) as usize;
    let height = u32::from_be_bytes(sof[4..8].try_into().unwrap()) as usize;
    let ncomp = sof[8] as usize;
    if width == 0 || height == 0 || (ncomp != 1 && ncomp != 3) {
        return Err(JpegError("bad SOF parameters".into()));
    }
    if width.saturating_mul(height).saturating_mul(ncomp) > (1 << 28) {
        return Err(JpegError(format!(
            "implausible image size {width}x{height}x{ncomp}"
        )));
    }
    let dqt = expect_seg(data, &mut pos, DQT)?;
    if dqt.len() != 256 {
        return Err(JpegError("bad DQT size".into()));
    }
    let mut qlum = [0u16; 64];
    let mut qchr = [0u16; 64];
    for i in 0..64 {
        qlum[i] = u16::from_be_bytes([dqt[2 * i], dqt[2 * i + 1]]);
        qchr[i] = u16::from_be_bytes([dqt[128 + 2 * i], dqt[128 + 2 * i + 1]]);
        if qlum[i] == 0 || qchr[i] == 0 {
            return Err(JpegError("zero quantizer step".into()));
        }
    }
    let dht = expect_seg(data, &mut pos, DHT)?;
    if dht.is_empty() {
        return Err(JpegError("empty DHT".into()));
    }
    let n_classes = dht[0] as usize;
    if n_classes == 0 || n_classes > 2 {
        return Err(JpegError("bad table class count".into()));
    }
    let mut cur = 1;
    let mut dc_tables = Vec::new();
    let mut ac_tables = Vec::new();
    for _ in 0..n_classes {
        let (t, used) = HuffTable::try_from_bytes(&dht[cur..])
            .ok_or_else(|| JpegError("malformed Huffman table".into()))?;
        cur += used;
        dc_tables.push(t);
        let (t, used) = HuffTable::try_from_bytes(&dht[cur..])
            .ok_or_else(|| JpegError("malformed Huffman table".into()))?;
        cur += used;
        ac_tables.push(t);
    }
    let scan = expect_seg(data, &mut pos, SOS)?;
    if pos + 2 > data.len() || data[pos..pos + 2] != EOI.to_be_bytes() {
        return Err(JpegError("missing EOI".into()));
    }

    // Entropy decode + reconstruct.
    let mut r = BitReader::new(scan);
    let bw = width.div_ceil(8);
    let bh = height.div_ceil(8);
    let mut planes: Vec<Plane<f32>> = Vec::with_capacity(ncomp);
    for c in 0..ncomp {
        let class = usize::from(c > 0).min(n_classes - 1);
        let qtab = if c == 0 { &qlum } else { &qchr };
        let dct_ = &dc_tables[class];
        let act = &ac_tables[class];
        let mut plane = Plane::<f32>::new(width, height);
        let mut pred = 0i32;
        for by in 0..bh {
            for bx in 0..bw {
                let mut zz = [0i32; 64];
                let cat = u32::from(dct_.decode(&mut r));
                if cat > 16 {
                    return Err(JpegError("bad DC category".into()));
                }
                let diff = from_extra_bits(r.bits(cat), cat);
                pred += diff;
                zz[0] = pred;
                let mut k = 1;
                while k < 64 {
                    let sym = act.decode(&mut r);
                    if sym == 0x00 {
                        break; // EOB
                    }
                    if sym == 0xF0 {
                        k += 16;
                        continue;
                    }
                    let run = (sym >> 4) as usize;
                    let size = u32::from(sym & 0x0F);
                    k += run;
                    if k >= 64 || size == 0 {
                        return Err(JpegError("AC run overflow".into()));
                    }
                    zz[k] = from_extra_bits(r.bits(size), size);
                    k += 1;
                }
                // Dezigzag + dequantize + IDCT.
                let mut block = [0f32; 64];
                for (kk, &v) in zz.iter().enumerate() {
                    let idx = ZIGZAG[kk];
                    block[idx] = v as f32 * f32::from(qtab[idx]);
                }
                dct::inverse(&mut block);
                for dy in 0..8 {
                    let y = by * 8 + dy;
                    if y >= height {
                        break;
                    }
                    for dx in 0..8 {
                        let x = bx * 8 + dx;
                        if x >= width {
                            break;
                        }
                        plane.set(x, y, block[dy * 8 + dx]);
                    }
                }
            }
        }
        planes.push(plane);
    }
    if ncomp == 3 {
        let (a, rest) = planes.split_at_mut(1);
        let (b, c) = rest.split_at_mut(1);
        ict_inverse(&mut a[0], &mut b[0], &mut c[0]);
    }
    let int_planes: Vec<Plane<i32>> = planes.iter().map(|p| p.map(|v| v.round() as i32)).collect();
    let mut img = Image::new(int_planes, 8, false);
    dc_level_shift_inverse(&mut img);
    img.clamp_to_depth();
    Ok(img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pj2k_image::metrics::psnr;
    use pj2k_image::synth;

    #[test]
    fn category_and_extra_bits_roundtrip() {
        for v in [-2047, -1024, -255, -3, -1, 0, 1, 2, 3, 127, 128, 1023, 2047] {
            let cat = category(v);
            if v == 0 {
                assert_eq!(cat, 0);
                continue;
            }
            let raw = extra_bits(v, cat);
            assert_eq!(from_extra_bits(raw, cat), v, "v={v}");
        }
    }

    #[test]
    fn gray_roundtrip_quality_sweep() {
        let img = synth::natural_gray(96, 64, 7);
        let mut prev_psnr = 0.0;
        let mut prev_size = usize::MAX;
        for q in [25u8, 50, 75, 95] {
            let bytes = encode(&img, q).unwrap();
            let out = decode(&bytes).unwrap();
            let p = psnr(&img, &out);
            assert!(p > prev_psnr, "q={q}: psnr {p} <= {prev_psnr}");
            assert!(bytes.len() > 100);
            prev_psnr = p;
            let _ = std::mem::replace(&mut prev_size, bytes.len());
        }
        assert!(prev_psnr > 30.0, "q95 psnr {prev_psnr}");
    }

    #[test]
    fn rgb_roundtrip() {
        let img = synth::natural_rgb(48, 40, 3);
        let bytes = encode(&img, 80).unwrap();
        let out = decode(&bytes).unwrap();
        assert_eq!(out.num_components(), 3);
        assert!(psnr(&img, &out) > 26.0);
    }

    #[test]
    fn non_multiple_of_8_dimensions() {
        for (w, h) in [(17, 9), (8, 8), (1, 1), (100, 3)] {
            let img = synth::natural_gray(w, h, 1);
            let bytes = encode(&img, 70).unwrap();
            let out = decode(&bytes).unwrap();
            assert_eq!((out.width(), out.height()), (w, h));
        }
    }

    #[test]
    fn flat_image_compresses_tiny() {
        let img = Image::gray8(Plane::from_fn(256, 256, |_, _| 128));
        let bytes = encode(&img, 75).unwrap();
        assert!(bytes.len() < 3000, "{} bytes", bytes.len());
        let out = decode(&bytes).unwrap();
        assert!(psnr(&img, &out) > 50.0);
    }

    #[test]
    fn lower_quality_compresses_smaller() {
        let img = synth::natural_gray(128, 128, 5);
        let hi = encode(&img, 90).unwrap().len();
        let lo = encode(&img, 20).unwrap().len();
        assert!(lo < hi, "lo={lo} hi={hi}");
    }

    #[test]
    fn rejects_unsupported_components() {
        let planes = vec![Plane::<i32>::new(4, 4); 2];
        let img = Image::new(planes, 8, false);
        assert!(encode(&img, 50).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(&[]).is_err());
        assert!(decode(&[0xFF, 0xD8]).is_err());
        assert!(decode(&[0x00; 64]).is_err());
    }

    #[test]
    fn truncated_streams_error_not_panic() {
        let img = synth::natural_gray(32, 32, 2);
        let bytes = encode(&img, 60).unwrap();
        for cut in (2..bytes.len()).step_by(11) {
            let _ = decode(&bytes[..cut]);
        }
    }
}
