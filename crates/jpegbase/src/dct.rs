//! 8x8 type-II DCT and its inverse (orthonormal, separable).

/// Transform block size.
pub const N: usize = 8;

/// Precomputed cosine basis: `BASIS[u][x] = c(u) * cos((2x+1) u π / 16)`
/// with `c(0) = sqrt(1/8)`, `c(u) = sqrt(2/8)`.
fn basis() -> &'static [[f32; N]; N] {
    use std::sync::OnceLock;
    static BASIS: OnceLock<[[f32; N]; N]> = OnceLock::new();
    BASIS.get_or_init(|| {
        let mut b = [[0f32; N]; N];
        for (u, row) in b.iter_mut().enumerate() {
            let c = if u == 0 {
                (1.0 / N as f64).sqrt()
            } else {
                (2.0 / N as f64).sqrt()
            };
            for (x, v) in row.iter_mut().enumerate() {
                *v = (c * ((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI / 16.0).cos())
                    as f32;
            }
        }
        b
    })
}

/// Forward 8x8 DCT, row-major `block` in place.
pub fn forward(block: &mut [f32; N * N]) {
    let b = basis();
    let mut tmp = [0f32; N * N];
    // rows
    for y in 0..N {
        for u in 0..N {
            let mut acc = 0.0;
            for x in 0..N {
                acc += block[y * N + x] * b[u][x];
            }
            tmp[y * N + u] = acc;
        }
    }
    // columns
    for u in 0..N {
        for v in 0..N {
            let mut acc = 0.0;
            for y in 0..N {
                acc += tmp[y * N + u] * b[v][y];
            }
            block[v * N + u] = acc;
        }
    }
}

/// Inverse 8x8 DCT, row-major `block` in place.
pub fn inverse(block: &mut [f32; N * N]) {
    let b = basis();
    let mut tmp = [0f32; N * N];
    // columns
    for u in 0..N {
        for y in 0..N {
            let mut acc = 0.0;
            for v in 0..N {
                acc += block[v * N + u] * b[v][y];
            }
            tmp[y * N + u] = acc;
        }
    }
    // rows
    for y in 0..N {
        for x in 0..N {
            let mut acc = 0.0;
            for u in 0..N {
                acc += tmp[y * N + u] * b[u][x];
            }
            block[y * N + x] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_near_exact() {
        let mut block = [0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 37) % 255) as f32 - 127.0;
        }
        let orig = block;
        forward(&mut block);
        inverse(&mut block);
        for i in 0..64 {
            assert!((block[i] - orig[i]).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn dc_of_constant_block() {
        let mut block = [100f32; 64];
        forward(&mut block);
        // Orthonormal: DC = 100 * 8 = 800, all AC ~ 0.
        assert!((block[0] - 800.0).abs() < 1e-2, "{}", block[0]);
        for (i, &v) in block.iter().enumerate().skip(1) {
            assert!(v.abs() < 1e-3, "AC {i} = {v}");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let mut block = [0f32; 64];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 13 + 7) % 101) as f32 - 50.0;
        }
        let e0: f64 = block.iter().map(|&v| (v as f64) * (v as f64)).sum();
        forward(&mut block);
        let e1: f64 = block.iter().map(|&v| (v as f64) * (v as f64)).sum();
        assert!((e0 - e1).abs() / e0 < 1e-5, "{e0} vs {e1}");
    }

    #[test]
    fn horizontal_cosine_hits_single_coefficient() {
        let mut block = [0f32; 64];
        for y in 0..8 {
            for x in 0..8 {
                block[y * 8 + x] = ((2 * x + 1) as f32 * 3.0 * std::f32::consts::PI / 16.0).cos();
            }
        }
        forward(&mut block);
        // Energy should concentrate at (u=3, v=0).
        let peak = block[3].abs();
        for (i, &v) in block.iter().enumerate() {
            if i != 3 {
                assert!(v.abs() < peak * 1e-3 + 1e-4, "leak at {i}: {v}");
            }
        }
    }
}
