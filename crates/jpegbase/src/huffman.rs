//! Canonical Huffman coding in the JPEG style: tables are described by a
//! `BITS` array (code count per length 1..=16) plus the symbol list in code
//! order, exactly the DHT wire format. Tables are built per image from
//! symbol frequencies (JPEG's optimized-coding mode) with the spec's K.3
//! length-limiting adjustment.

use crate::bitstream::{BitReader, BitWriter};

/// Maximum code length (JPEG limit).
pub const MAX_LEN: usize = 16;

/// A Huffman table in DHT form plus derived encode/decode structures.
#[derive(Debug, Clone)]
pub struct HuffTable {
    /// `bits[l]` = number of codes of length `l` (index 0 unused).
    pub bits: [u8; MAX_LEN + 1],
    /// Symbols in canonical code order.
    pub values: Vec<u8>,
    /// Per-symbol (code, length); length 0 = symbol absent.
    enc: Vec<(u16, u8)>,
    /// Canonical decode acceleration: min/max code and value pointer per
    /// length.
    mincode: [i32; MAX_LEN + 1],
    maxcode: [i32; MAX_LEN + 1],
    valptr: [usize; MAX_LEN + 1],
}

impl HuffTable {
    /// Build the derived structures from `bits` + `values`.
    ///
    /// # Panics
    /// Panics if the description is inconsistent (more codes than fit, or
    /// count mismatch); see [`HuffTable::try_from_spec`] for the fallible
    /// variant used when parsing untrusted streams.
    pub fn from_spec(bits: [u8; MAX_LEN + 1], values: Vec<u8>) -> Self {
        Self::try_from_spec(bits, values).expect("inconsistent Huffman spec")
    }

    /// Fallible [`HuffTable::from_spec`]: `None` on inconsistent specs
    /// (count mismatch, canonical code overflow).
    pub fn try_from_spec(bits: [u8; MAX_LEN + 1], values: Vec<u8>) -> Option<Self> {
        let total: usize = bits[1..].iter().map(|&b| b as usize).sum();
        if total != values.len() {
            return None;
        }
        let mut enc = vec![(0u16, 0u8); 256];
        let mut mincode = [0i32; MAX_LEN + 1];
        let mut maxcode = [-1i32; MAX_LEN + 1];
        let mut valptr = [0usize; MAX_LEN + 1];
        let mut code: u32 = 0;
        let mut k = 0usize;
        for l in 1..=MAX_LEN {
            if code + u32::from(bits[l]) > (1 << l) {
                return None; // canonical code space exhausted
            }
            valptr[l] = k;
            mincode[l] = code as i32;
            for _ in 0..bits[l] {
                enc[values[k] as usize] = (code as u16, l as u8);
                code += 1;
                k += 1;
            }
            maxcode[l] = code as i32 - 1;
            code <<= 1;
        }
        Some(Self {
            bits,
            values,
            enc,
            mincode,
            maxcode,
            valptr,
        })
    }

    /// Build an optimal (length-limited) table for `freq` (256 symbol
    /// frequencies). Symbols with zero frequency get no code. Implements
    /// the JPEG K.2/K.3 procedure, including the reserved all-ones
    /// codepoint.
    pub fn optimized(freq: &[u64; 256]) -> Self {
        // K.2 uses an extra pseudo-symbol (index 256) with frequency 1 to
        // reserve the all-ones code.
        let mut f = [0u64; 257];
        f[..256].copy_from_slice(freq);
        f[256] = 1;
        let mut others = [-1i32; 257];
        let mut codesize = [0u32; 257];

        loop {
            // find v1: least nonzero freq, ties to larger index
            let mut v1: i32 = -1;
            let mut v2: i32 = -1;
            for (i, &fi) in f.iter().enumerate() {
                if fi == 0 {
                    continue;
                }
                if v1 < 0 || fi < f[v1 as usize] || (fi == f[v1 as usize] && i as i32 > v1) {
                    v2 = v1;
                    v1 = i as i32;
                } else if v2 < 0 || fi < f[v2 as usize] || (fi == f[v2 as usize] && i as i32 > v2) {
                    v2 = i as i32;
                }
            }
            if v2 < 0 {
                break; // single tree remains
            }
            let (v1u, v2u) = (v1 as usize, v2 as usize);
            f[v1u] += f[v2u];
            f[v2u] = 0;
            codesize[v1u] += 1;
            let mut i = v1u;
            while others[i] >= 0 {
                i = others[i] as usize;
                codesize[i] += 1;
            }
            others[i] = v2;
            codesize[v2u] += 1;
            let mut i = v2u;
            while others[i] >= 0 {
                i = others[i] as usize;
                codesize[i] += 1;
            }
        }

        // Count codes per size (can exceed 16; also size 0 for unused).
        let mut counts = vec![0u32; 260];
        for &cs in codesize.iter() {
            if cs > 0 {
                counts[cs as usize] += 1;
            }
        }
        // K.3 Adjust_BITS: fold over-long codes back to <= 16.
        let mut i = counts.len() - 1;
        while i > MAX_LEN {
            while counts[i] > 0 {
                let mut j = i - 2;
                while counts[j] == 0 {
                    j -= 1;
                }
                counts[i] -= 2;
                counts[i - 1] += 1;
                counts[j + 1] += 2;
                counts[j] -= 1;
            }
            i -= 1;
        }
        // Remove the reserved pseudo-symbol from the longest used length.
        let mut l = MAX_LEN;
        while l > 0 && counts[l] == 0 {
            l -= 1;
        }
        if l > 0 {
            counts[l] -= 1;
        }

        // Sort symbols by (codesize, symbol) — canonical order.
        let mut order: Vec<usize> = (0..256).filter(|&s| codesize[s] > 0).collect();
        order.sort_by_key(|&s| (codesize[s], s));
        let mut bits = [0u8; MAX_LEN + 1];
        for (idx, c) in counts.iter().enumerate().take(MAX_LEN + 1).skip(1) {
            bits[idx] = *c as u8;
        }
        let values: Vec<u8> = order.iter().map(|&s| s as u8).collect();
        Self::from_spec(bits, values)
    }

    /// Emit symbol `s`.
    ///
    /// # Panics
    /// Panics if `s` has no code (zero training frequency).
    pub fn encode(&self, w: &mut BitWriter, s: u8) {
        let (code, len) = self.enc[s as usize];
        assert!(len > 0, "symbol {s} has no code");
        w.put(u32::from(code), u32::from(len));
    }

    /// Decode one symbol.
    pub fn decode(&self, r: &mut BitReader) -> u8 {
        let mut code = 0i32;
        for l in 1..=MAX_LEN {
            code = (code << 1) | r.bit() as i32;
            if self.maxcode[l] >= code && code >= self.mincode[l] {
                return self.values[self.valptr[l] + (code - self.mincode[l]) as usize];
            }
        }
        // Corrupt stream: return the last symbol to stay total.
        *self.values.last().unwrap_or(&0)
    }

    /// Serialize as DHT-style bytes: 16 count bytes then the values.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.values.len());
        out.extend_from_slice(&self.bits[1..]);
        out.extend_from_slice(&self.values);
        out
    }

    /// Parse a DHT-style description.
    ///
    /// # Panics
    /// Panics on truncated input; see [`HuffTable::try_from_bytes`] for the
    /// fallible variant.
    pub fn from_bytes(data: &[u8]) -> (Self, usize) {
        Self::try_from_bytes(data).expect("malformed Huffman description")
    }

    /// Fallible [`HuffTable::from_bytes`]: `None` on truncation or
    /// inconsistency.
    pub fn try_from_bytes(data: &[u8]) -> Option<(Self, usize)> {
        if data.len() < 16 {
            return None;
        }
        let mut bits = [0u8; MAX_LEN + 1];
        bits[1..].copy_from_slice(&data[..16]);
        let n: usize = bits[1..].iter().map(|&b| b as usize).sum();
        if data.len() < 16 + n {
            return None;
        }
        let values = data[16..16 + n].to_vec();
        Some((Self::try_from_spec(bits, values)?, 16 + n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freq_of(symbols: &[u8]) -> [u64; 256] {
        let mut f = [0u64; 256];
        for &s in symbols {
            f[s as usize] += 1;
        }
        f
    }

    #[test]
    fn roundtrip_skewed_alphabet() {
        let mut syms = Vec::new();
        for i in 0..2000u32 {
            syms.push(match i % 16 {
                0..=7 => 0u8,
                8..=11 => 1,
                12..=13 => 2,
                14 => 3,
                _ => (4 + (i % 5)) as u8,
            });
        }
        let table = HuffTable::optimized(&freq_of(&syms));
        let mut w = BitWriter::new();
        for &s in &syms {
            table.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (i, &s) in syms.iter().enumerate() {
            assert_eq!(table.decode(&mut r), s, "symbol {i}");
        }
        // skewed alphabet should compress: < 4 bits/symbol here
        assert!(bytes.len() * 8 < syms.len() * 4, "{} bytes", bytes.len());
    }

    #[test]
    fn single_symbol_alphabet() {
        let f = freq_of(&[42u8; 10]);
        let table = HuffTable::optimized(&f);
        let mut w = BitWriter::new();
        for _ in 0..10 {
            table.encode(&mut w, 42);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for _ in 0..10 {
            assert_eq!(table.decode(&mut r), 42);
        }
    }

    #[test]
    fn dht_serialization_roundtrip() {
        let syms: Vec<u8> = (0..200).map(|i| (i * 7 % 40) as u8).collect();
        let table = HuffTable::optimized(&freq_of(&syms));
        let bytes = table.to_bytes();
        let (table2, consumed) = HuffTable::from_bytes(&bytes);
        assert_eq!(consumed, bytes.len());
        assert_eq!(table.bits, table2.bits);
        assert_eq!(table.values, table2.values);
        // Encoding agrees.
        let mut w1 = BitWriter::new();
        let mut w2 = BitWriter::new();
        for &s in &syms {
            table.encode(&mut w1, s);
            table2.encode(&mut w2, s);
        }
        assert_eq!(w1.finish(), w2.finish());
    }

    #[test]
    fn codes_never_exceed_16_bits_under_extreme_skew() {
        // Exponential frequencies force deep trees; K.3 must cap at 16.
        let mut f = [0u64; 256];
        for (i, fi) in f.iter_mut().enumerate().take(40) {
            *fi = 1u64 << (40 - i).min(50);
        }
        let table = HuffTable::optimized(&f);
        let total: usize = table.bits[1..].iter().map(|&b| b as usize).sum();
        assert_eq!(total, 40);
        // all-ones code must remain unused: max code of max length fits
        for l in (1..=MAX_LEN).rev() {
            if table.bits[l] > 0 {
                assert!(table.maxcode[l] < (1 << l) - 1, "all-ones used at {l}");
                break;
            }
        }
    }

    #[test]
    fn full_byte_alphabet_roundtrip() {
        let syms: Vec<u8> = (0..=255u8)
            .flat_map(|s| vec![s; (s as usize % 7) + 1])
            .collect();
        let table = HuffTable::optimized(&freq_of(&syms));
        let mut w = BitWriter::new();
        for &s in &syms {
            table.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &syms {
            assert_eq!(table.decode(&mut r), s);
        }
    }

    #[test]
    #[should_panic(expected = "no code")]
    fn unknown_symbol_panics() {
        let table = HuffTable::optimized(&freq_of(&[1, 1, 2]));
        let mut w = BitWriter::new();
        table.encode(&mut w, 99);
    }
}
