//! JPEG entropy-coded-segment bit I/O: MSB-first with `0xFF 0x00` byte
//! stuffing.

/// Bit writer for the entropy-coded segment.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    nbits: u32,
}

impl BitWriter {
    /// Fresh writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `n` bits of `v`, MSB first.
    pub fn put(&mut self, v: u32, n: u32) {
        debug_assert!(n <= 24);
        self.acc = (self.acc << n) | (v & ((1u32 << n) - 1));
        self.nbits += n;
        while self.nbits >= 8 {
            let byte = (self.acc >> (self.nbits - 8)) as u8;
            self.out.push(byte);
            if byte == 0xFF {
                self.out.push(0x00); // stuffing
            }
            self.nbits -= 8;
        }
    }

    /// Pad with 1-bits to a byte boundary (JPEG convention) and return the
    /// segment.
    pub fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put((1u32 << pad) - 1, pad);
        }
        self.out
    }
}

/// Bit reader matching [`BitWriter`].
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u32,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    /// Read from `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn fill(&mut self) {
        while self.nbits <= 24 {
            let byte = if self.pos < self.data.len() {
                let b = self.data[self.pos];
                self.pos += 1;
                if b == 0xFF {
                    // Skip the stuffing zero (markers never appear inside
                    // pj2k's entropy segments).
                    if self.pos < self.data.len() && self.data[self.pos] == 0x00 {
                        self.pos += 1;
                    }
                }
                b
            } else {
                0xFF // feed 1s past the end, mirroring the pad
            };
            self.acc = (self.acc << 8) | u32::from(byte);
            self.nbits += 8;
        }
    }

    /// Read one bit.
    pub fn bit(&mut self) -> u32 {
        if self.nbits == 0 {
            self.fill();
        }
        self.nbits -= 1;
        (self.acc >> self.nbits) & 1
    }

    /// Read `n` bits, MSB first.
    pub fn bits(&mut self, n: u32) -> u32 {
        debug_assert!(n <= 16);
        if self.nbits < n {
            self.fill();
        }
        self.nbits -= n;
        (self.acc >> self.nbits) & ((1u32 << n) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let vals: Vec<(u32, u32)> = vec![(1, 1), (0, 1), (5, 3), (0xFF, 8), (0xFFFF, 16), (7, 11)];
        let mut w = BitWriter::new();
        for &(v, n) in &vals {
            w.put(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &vals {
            assert_eq!(r.bits(n), v);
        }
    }

    #[test]
    fn ff_is_stuffed() {
        let mut w = BitWriter::new();
        w.put(0xFF, 8);
        w.put(0xAB, 8);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0xFF, 0x00, 0xAB]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.bits(8), 0xFF);
        assert_eq!(r.bits(8), 0xAB);
    }

    #[test]
    fn padding_is_ones() {
        let mut w = BitWriter::new();
        w.put(0, 3);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0001_1111]);
    }

    #[test]
    fn long_pseudorandom_stream() {
        let mut state = 99u64;
        let mut seq = Vec::new();
        let mut w = BitWriter::new();
        for _ in 0..5000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let n = (state >> 59) as u32 % 12 + 1;
            let v = (state >> 20) as u32 & ((1 << n) - 1);
            seq.push((v, n));
            w.put(v, n);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for (i, &(v, n)) in seq.iter().enumerate() {
            assert_eq!(r.bits(n), v, "item {i}");
        }
    }
}
