//! Baseline JPEG comparator codec (DCT + Huffman).
//!
//! The paper's Fig. 2 compares JPEG2000 encode times against DCT-based JPEG
//! (and SPIHT), and Fig. 4 contrasts their artifacts at low bit rates. This
//! crate implements the baseline JPEG coding chain from scratch: 8x8
//! forward/inverse DCT, Annex-K quantization tables with IJG quality
//! scaling, zig-zag ordering, and canonical Huffman entropy coding with
//! per-image optimized tables (JPEG's "optimized coding" mode, with the
//! table transmitted in the header).
//!
//! The marker container is pj2k's own (no JFIF interop is claimed — the
//! experiments need the *computational shape* of JPEG: cheap transform,
//! cheap entropy coding, independent 8x8 blocks, blocking artifacts at low
//! rates).

pub mod bitstream;
pub mod codec;
pub mod dct;
pub mod huffman;
pub mod tables;

pub use codec::{decode, encode, JpegError};
