//! Quantization tables (ISO/IEC 10918-1 Annex K) with IJG quality scaling,
//! and the zig-zag scan order.

/// Annex K.1 luminance quantization table (quality 50), row-major.
pub const LUMA_Q50: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, //
    12, 12, 14, 19, 26, 58, 60, 55, //
    14, 13, 16, 24, 40, 57, 69, 56, //
    14, 17, 22, 29, 51, 87, 80, 62, //
    18, 22, 37, 56, 68, 109, 103, 77, //
    24, 35, 55, 64, 81, 104, 113, 92, //
    49, 64, 78, 87, 103, 121, 120, 101, //
    72, 92, 95, 98, 112, 100, 103, 99,
];

/// Annex K.2 chrominance quantization table (quality 50), row-major.
pub const CHROMA_Q50: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, //
    18, 21, 26, 66, 99, 99, 99, 99, //
    24, 26, 56, 99, 99, 99, 99, 99, //
    47, 66, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99, //
    99, 99, 99, 99, 99, 99, 99, 99,
];

/// Zig-zag scan order: `ZIGZAG[k]` is the row-major index of the `k`-th
/// coefficient in scan order.
pub const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, //
    17, 24, 32, 25, 18, 11, 4, 5, //
    12, 19, 26, 33, 40, 48, 41, 34, //
    27, 20, 13, 6, 7, 14, 21, 28, //
    35, 42, 49, 56, 57, 50, 43, 36, //
    29, 22, 15, 23, 30, 37, 44, 51, //
    58, 59, 52, 45, 38, 31, 39, 46, //
    53, 60, 61, 54, 47, 55, 62, 63,
];

/// Scale a base table by JPEG quality `q` in `1..=100` (IJG formula).
pub fn scaled(base: &[u16; 64], quality: u8) -> [u16; 64] {
    let q = quality.clamp(1, 100) as i32;
    let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
    let mut out = [0u16; 64];
    for (o, &b) in out.iter_mut().zip(base) {
        *o = (((i32::from(b) * scale + 50) / 100).clamp(1, 255)) as u16;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 64];
        for &i in &ZIGZAG {
            assert!(!seen[i], "duplicate {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // First few entries follow the canonical diagonal walk.
        assert_eq!(&ZIGZAG[..6], &[0, 1, 8, 16, 9, 2]);
        assert_eq!(ZIGZAG[63], 63);
    }

    #[test]
    fn zigzag_walks_antidiagonals() {
        // Indices along the scan never jump more than one diagonal.
        let diag = |i: usize| (i / 8) + (i % 8);
        for k in 1..64 {
            let d = diag(ZIGZAG[k]) as i32 - diag(ZIGZAG[k - 1]) as i32;
            assert!(d.abs() <= 1, "k={k}");
        }
    }

    #[test]
    fn quality_50_is_identity() {
        assert_eq!(scaled(&LUMA_Q50, 50), LUMA_Q50);
    }

    #[test]
    fn quality_scaling_monotone() {
        let q25 = scaled(&LUMA_Q50, 25);
        let q75 = scaled(&LUMA_Q50, 75);
        let q100 = scaled(&LUMA_Q50, 100);
        for i in 0..64 {
            assert!(q25[i] >= LUMA_Q50[i], "i={i}");
            assert!(q75[i] <= LUMA_Q50[i], "i={i}");
            assert_eq!(q100[i].max(1), q100[i]);
            assert!(q100[i] <= 2, "q100 nearly lossless: {}", q100[i]);
        }
    }

    #[test]
    fn steps_never_zero() {
        for q in [1u8, 2, 10, 99, 100] {
            for &v in scaled(&CHROMA_Q50, q).iter() {
                assert!(v >= 1);
            }
        }
    }
}
