//! Property tests for the baseline JPEG comparator.

use pj2k_image::{Image, Plane};
use pj2k_jpegbase::bitstream::{BitReader, BitWriter};
use pj2k_jpegbase::huffman::HuffTable;
use pj2k_jpegbase::{decode, encode};
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = Image> {
    (1usize..48, 1usize..48, any::<u64>(), 0u8..3).prop_map(|(w, h, seed, kind)| {
        let mut state = seed | 1;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 256) as i32
        };
        match kind {
            0 => Image::gray8(Plane::from_fn(w, h, |_, _| rnd())),
            1 => Image::gray8(Plane::from_fn(w, h, |x, y| {
                // smooth content
                (((x * 255) / w + (y * 255) / h) / 2) as i32
            })),
            _ => Image::rgb8(
                Plane::from_fn(w, h, |_, _| rnd()),
                Plane::from_fn(w, h, |_, _| rnd()),
                Plane::from_fn(w, h, |_, _| rnd()),
            ),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every encode decodes to an image of the same geometry with samples
    /// in range, at any quality.
    #[test]
    fn encode_decode_total(img in arb_image(), quality in 1u8..=100) {
        let bytes = encode(&img, quality).unwrap();
        let out = decode(&bytes).unwrap();
        prop_assert_eq!(out.width(), img.width());
        prop_assert_eq!(out.height(), img.height());
        prop_assert_eq!(out.num_components(), img.num_components());
        for c in 0..out.num_components() {
            for v in out.component(c).samples() {
                prop_assert!((0..=255).contains(&v));
            }
        }
    }

    /// High quality on smooth content reconstructs accurately.
    #[test]
    fn q95_is_accurate_on_smooth(w in 8usize..40, h in 8usize..40) {
        let img = Image::gray8(Plane::from_fn(w, h, |x, y| {
            (128.0 + 60.0 * ((x as f64) / 9.0).sin() + 40.0 * ((y as f64) / 7.0).cos()) as i32
        }));
        let bytes = encode(&img, 95).unwrap();
        let out = decode(&bytes).unwrap();
        let psnr = pj2k_image::metrics::psnr(&img, &out);
        prop_assert!(psnr > 35.0, "q95 PSNR {}", psnr);
    }

    /// The decoder is total on arbitrary garbage.
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = decode(&bytes);
    }

    /// Bit-corrupted streams never panic the decoder.
    #[test]
    fn decoder_survives_corruption(seed in any::<u64>(), xor in 1u8..=255) {
        let img = Image::gray8(Plane::from_fn(24, 24, |x, y| ((x * 11 + y * 5) % 256) as i32));
        let mut bytes = encode(&img, 60).unwrap();
        let pos = (seed % bytes.len() as u64) as usize;
        bytes[pos] ^= xor;
        let _ = decode(&bytes);
    }

    /// Huffman tables round-trip arbitrary symbol streams (including via
    /// their DHT serialization).
    #[test]
    fn huffman_roundtrip(symbols in proptest::collection::vec(0u8..40, 1..2000)) {
        let mut freq = [0u64; 256];
        for &s in &symbols {
            freq[s as usize] += 1;
        }
        let table = HuffTable::optimized(&freq);
        let (table2, _) = HuffTable::from_bytes(&table.to_bytes());
        let mut w = BitWriter::new();
        for &s in &symbols {
            table.encode(&mut w, s);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            prop_assert_eq!(table2.decode(&mut r), s);
        }
    }

    /// Code lengths never exceed 16 bits, whatever the skew.
    #[test]
    fn huffman_respects_length_limit(weights in proptest::collection::vec(0u64..u64::MAX / 1024, 2..80)) {
        let mut freq = [0u64; 256];
        for (i, &wt) in weights.iter().enumerate() {
            freq[i] = wt.max(1);
        }
        let table = HuffTable::optimized(&freq);
        let total: usize = table.bits[1..].iter().map(|&b| b as usize).sum();
        prop_assert_eq!(total, weights.len());
    }
}
