//! Shared per-coefficient coding state for the Tier-1 encoder and decoder.

/// Flag bits stored per coefficient.
pub(crate) const SIG: u8 = 1; // significant
pub(crate) const VISITED: u8 = 2; // coded in the current plane's SPP
pub(crate) const REFINED: u8 = 4; // has had its first refinement
pub(crate) const NEWSIG: u8 = 8; // became significant in the current plane's SPP
pub(crate) const NEG: u8 = 16; // sign bit (set = negative)

/// Padded flag grid: a one-cell border of permanently-insignificant
/// neighbors removes all bounds checks from context formation.
#[derive(Default)]
pub(crate) struct FlagGrid {
    pub w: usize,
    pub h: usize,
    stride: usize,
    flags: Vec<u8>,
}

impl FlagGrid {
    // AUDIT(hot): setup-time — delegates to `reset`, which recycles.
    pub fn new(w: usize, h: usize) -> Self {
        let mut g = Self {
            w: 0,
            h: 0,
            stride: 0,
            flags: Vec::new(),
        };
        g.reset(w, h);
        g
    }

    /// Re-dimension the grid for a new block and zero every flag, keeping
    /// the previously allocated storage when it is large enough.
    // AUDIT(hot): amortized — clear + resize reuses the prior block's
    // capacity; steady state allocates nothing.
    pub fn reset(&mut self, w: usize, h: usize) {
        self.w = w;
        self.h = h;
        self.stride = w + 2;
        self.flags.clear();
        self.flags.resize((w + 2) * (h + 2), 0);
    }

    /// Padded index of coefficient `(x, y)`.
    #[inline]
    pub fn idx(&self, x: usize, y: usize) -> usize {
        (y + 1) * self.stride + (x + 1)
    }

    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        self.flags[i]
    }

    #[inline]
    pub fn set(&mut self, i: usize, bits: u8) {
        self.flags[i] |= bits;
    }

    /// Clear VISITED and NEWSIG everywhere (start of a new bit-plane).
    pub fn clear_plane_flags(&mut self) {
        for f in &mut self.flags {
            *f &= !(VISITED | NEWSIG);
        }
    }

    #[inline]
    fn sig(&self, i: usize) -> u32 {
        u32::from(self.flags[i] & SIG != 0)
    }

    /// Horizontal significant-neighbor count (0..=2).
    #[inline]
    pub fn h_count(&self, i: usize) -> u32 {
        self.sig(i - 1) + self.sig(i + 1)
    }

    /// Vertical significant-neighbor count (0..=2). With `skip_south`
    /// (vertically stripe-causal mode at a stripe's last row) the southern
    /// neighbor is treated as insignificant.
    #[inline]
    pub fn v_count(&self, i: usize, skip_south: bool) -> u32 {
        self.sig(i - self.stride)
            + if skip_south {
                0
            } else {
                self.sig(i + self.stride)
            }
    }

    /// Diagonal significant-neighbor count (0..=4), optionally ignoring the
    /// southern diagonals (stripe-causal mode).
    #[inline]
    pub fn d_count(&self, i: usize, skip_south: bool) -> u32 {
        let north = self.sig(i - self.stride - 1) + self.sig(i - self.stride + 1);
        if skip_south {
            north
        } else {
            north + self.sig(i + self.stride - 1) + self.sig(i + self.stride + 1)
        }
    }

    /// True if any of the (causally visible) 8 neighbors is significant.
    #[inline]
    pub fn any_sig_neighbor(&self, i: usize, skip_south: bool) -> bool {
        self.h_count(i) + self.v_count(i, skip_south) + self.d_count(i, skip_south) > 0
    }

    #[inline]
    fn sign_contrib(&self, i: usize) -> i32 {
        if self.flags[i] & SIG == 0 {
            0
        } else if self.flags[i] & NEG != 0 {
            -1
        } else {
            1
        }
    }

    /// Clamped horizontal sign contribution (-1..=1).
    #[inline]
    pub fn hc(&self, i: usize) -> i32 {
        (self.sign_contrib(i - 1) + self.sign_contrib(i + 1)).clamp(-1, 1)
    }

    /// Clamped vertical sign contribution (-1..=1), optionally ignoring the
    /// southern neighbor (stripe-causal mode).
    #[inline]
    pub fn vc(&self, i: usize, skip_south: bool) -> i32 {
        let south = if skip_south {
            0
        } else {
            self.sign_contrib(i + self.stride)
        };
        (self.sign_contrib(i - self.stride) + south).clamp(-1, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn border_is_insignificant() {
        let mut g = FlagGrid::new(3, 3);
        // corner coefficient: all out-of-block neighbors count as zero
        let i = g.idx(0, 0);
        assert_eq!(g.h_count(i), 0);
        assert_eq!(g.v_count(i, false), 0);
        assert_eq!(g.d_count(i, false), 0);
        g.set(g.idx(1, 0), SIG);
        assert_eq!(g.h_count(i), 1);
    }

    #[test]
    fn neighbor_counts() {
        let mut g = FlagGrid::new(3, 3);
        for (x, y) in [(0, 1), (2, 1), (1, 0), (1, 2), (0, 0), (2, 2)] {
            g.set(g.idx(x, y), SIG);
        }
        let c = g.idx(1, 1);
        assert_eq!(g.h_count(c), 2);
        assert_eq!(g.v_count(c, false), 2);
        assert_eq!(g.d_count(c, false), 2);
        assert!(g.any_sig_neighbor(c, false));
        // Stripe-causal mode masks the southern contributions.
        assert_eq!(g.v_count(c, true), 1);
        assert_eq!(g.d_count(c, true), 1);
    }

    #[test]
    fn sign_contributions_clamp() {
        let mut g = FlagGrid::new(3, 1);
        g.set(g.idx(0, 0), SIG | NEG);
        g.set(g.idx(2, 0), SIG | NEG);
        let c = g.idx(1, 0);
        assert_eq!(g.hc(c), -1);
        let mut g2 = FlagGrid::new(3, 1);
        g2.set(g2.idx(0, 0), SIG);
        g2.set(g2.idx(2, 0), SIG | NEG);
        assert_eq!(g2.hc(g2.idx(1, 0)), 0);
        let mut g3 = FlagGrid::new(1, 2);
        g3.set(g3.idx(0, 1), SIG);
        assert_eq!(g3.vc(g3.idx(0, 0), false), 1);
        assert_eq!(g3.vc(g3.idx(0, 0), true), 0);
    }

    #[test]
    fn clear_plane_flags_preserves_sig() {
        let mut g = FlagGrid::new(2, 2);
        let i = g.idx(0, 0);
        g.set(i, SIG | VISITED | NEWSIG | REFINED | NEG);
        g.clear_plane_flags();
        assert_eq!(g.get(i), SIG | REFINED | NEG);
    }
}
