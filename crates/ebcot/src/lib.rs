//! EBCOT Tier-1: embedded block coding of quantized wavelet coefficients
//! (ISO/IEC 15444-1 Annex D; Taubman, *High performance scalable image
//! compression with EBCOT*, IEEE TIP 2000).
//!
//! Each code-block (paper default 64x64) is coded independently — this
//! independence is exactly what the reproduced paper exploits: *"In the
//! encoding stage ... no synchronisation is necessary due to the processing
//! of independent code-blocks"*. The block's sign-magnitude coefficients are
//! coded bit-plane by bit-plane in three passes per plane (significance
//! propagation, magnitude refinement, cleanup) against 19 adaptive MQ
//! contexts.
//!
//! Termination: every coding pass ends with an MQ flush (the standard's
//! per-pass termination mode), so any pass boundary is an exactly decodable
//! truncation point. Each pass also records its exact distortion reduction,
//! giving Tier-2's PCRD optimizer true rate/distortion points.

pub mod bitplane;
pub mod context;
pub mod decoder;
pub mod encoder;
pub(crate) mod state;

pub use bitplane::Tier1Engine;
pub use context::BandCtx;
pub use decoder::{decode_block, decode_block_with, BlockDecoderScratch, DecodeError};
pub use encoder::{
    encode_block, encode_block_with, BlockCoder, EncodedBlock, PassInfo, PassKind, Tier1Options,
    Tier1Profile,
};

/// Code-block scan geometry: stripes of 4 rows, columns left-to-right,
/// 4 coefficients top-to-bottom per column.
pub const STRIPE_HEIGHT: usize = 4;

/// Maximum coded magnitude bit-planes (`u32` magnitudes minus sign handling
/// headroom).
pub const MAX_PLANES: u8 = 31;
