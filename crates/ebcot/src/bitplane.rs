//! Packed flag-word Tier-1 engine.
//!
//! The reference encoder ([`crate::encoder`]) walks every coefficient of
//! every pass of every bit-plane and forms contexts from per-coefficient
//! byte lookups in a padded [`crate::state::FlagGrid`]. This module keeps
//! the same coding decisions — bit for bit — but stores the per-coefficient
//! state as *bit-planes*: one `u64` word covers 64 consecutive columns of a
//! row, and significance / visited / sign state are parallel word arrays.
//! That representation turns the three inner loops into word-level stencil
//! operations:
//!
//! - **Significance propagation** computes, per 4-row stripe and 64-column
//!   word, an *exact member mask*: for each row, the horizontally dilated
//!   significance of the row above, the row itself (east/west bits only),
//!   and — unless causally hidden — the row below, ANDed with the row's
//!   insignificant coefficients, ORed across the stripe. Columns outside
//!   the mask contain no pass member and are skipped wholesale; the sparse
//!   early planes of a typical block touch a handful of columns instead of
//!   all of them. Members minted mid-pass re-enter via a same-word east
//!   bit, or are caught by the next word's lazy mask reading live state.
//! - **Magnitude refinement** membership is *static* within a pass: a
//!   coefficient is refined at plane `p` iff it was significant when the
//!   plane started (a snapshot word array, not the live one), and its
//!   "first refinement" flag is exactly "not significant at the previous
//!   plane's start" — so the REFINED/NEWSIG byte flags disappear entirely
//!   and the pass iterates only member columns.
//! - **Cleanup** classifies whole stripe columns with mask algebra
//!   (quiet = no flags, neighbor-free = outside the dilated significance,
//!   zero = no bits at this plane) and batches maximal stretches of
//!   run-length-zero columns into a single [`pj2k_mq::MqEncoder::encode_run`]
//!   call — O(1) register work per run instead of per column.
//!
//! Context formation is table-driven: each active column's 3-wide
//! significance windows for the whole stripe (plus the rows above and
//! below) are gathered into one packed word, and the 9-bit slice for a
//! coefficient indexes a per-band zero-coding LUT ([`zc_lut`]) — replacing
//! the three stencil fetches, the h/v/d popcounts, and the nested context
//! branches with two shifts and one byte load. Sign coding likewise
//! resolves through a 256-entry LUT ([`sc_lut`]) keyed on the packed
//! neighbor significance and sign bits. Both tables are *generated from*
//! [`zc_context`] / [`sc_context`], so agreement with the reference engine
//! is by construction.
//!
//! Every decision, its context, and the f64 distortion accumulation order
//! are identical to the reference engine, which stays available behind
//! [`Tier1Engine::Reference`]; `tests/engines.rs` and the whole-codec
//! equality tests enforce byte-identical output across all
//! [`Tier1Options`] combinations.
//!
//! The stencil words are already 64-way data-parallel, and a code-block row
//! is at most 1024 coefficients (usually 64), i.e. 1–16 words — there is no
//! inner loop long enough for the `pj2k_dwt::simd` SSE2/AVX2 tiers to beat
//! plain scalar word ops, so this module deliberately stays portable (see
//! DESIGN.md §13).
#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

use crate::context::{
    initial_states, mr_context, sc_context, zc_context, BandCtx, CTX_RL, CTX_UNI, NUM_CTX,
};
use crate::encoder::{
    in_bypass_region, ref_distortion_gain, sig_distortion_gain, EncodedBlock, PassInfo, PassKind,
    Sink, Tier1Options, Tier1Profile,
};
use crate::STRIPE_HEIGHT;
use pj2k_mq::{CtxState, MqEncoder, RawEncoder};
use std::sync::OnceLock;

/// Which Tier-1 coding engine a [`crate::BlockCoder`] runs.
///
/// Both engines produce byte-identical codestreams; the knob exists for
/// ablation, regression hunting, and as an escape hatch. Mirrors
/// `pj2k_dwt::SimdMode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Tier1Engine {
    /// Use the bitplane engine unless the `PJ2K_TIER1` environment
    /// variable overrides it (`reference`, or `bitplane` to force the
    /// default explicitly).
    #[default]
    Auto,
    /// The original per-coefficient flag-grid coder.
    Reference,
    /// The packed flag-word coder (this module).
    Bitplane,
}

/// Parsed value of a `PJ2K_TIER1` token, `None` meaning "no override".
fn parse_engine_token(tok: &str) -> Option<Tier1Engine> {
    match tok.trim().to_ascii_lowercase().as_str() {
        "reference" | "ref" | "scalar" => Some(Tier1Engine::Reference),
        "bitplane" | "bitmask" => Some(Tier1Engine::Bitplane),
        _ => None,
    }
}

/// The cached `PJ2K_TIER1` override, read once per process. A set but
/// unrecognized value warns on stderr instead of silently falling back,
/// so a typo (`PJ2K_TIER1=refrence`) can't masquerade as an ablation run.
/// Empty and `auto` are accepted silently as explicit "no override".
fn env_override() -> Option<Tier1Engine> {
    static OVERRIDE: OnceLock<Option<Tier1Engine>> = OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        let v = std::env::var("PJ2K_TIER1").ok()?;
        let tok = v.trim();
        if tok.is_empty() || tok.eq_ignore_ascii_case("auto") {
            return None;
        }
        let parsed = parse_engine_token(tok);
        if parsed.is_none() {
            // AUDIT(hot): cold diagnostic — runs at most once per process
            // (OnceLock) and only when the env var is set to garbage.
            eprintln!(
                "pj2k: ignoring unrecognized PJ2K_TIER1={v:?} \
                 (expected reference|ref|scalar, bitplane|bitmask, or auto)"
            );
        }
        parsed
    })
}

impl Tier1Engine {
    /// Resolve to a concrete engine (never [`Tier1Engine::Auto`]):
    /// `Auto` honours `PJ2K_TIER1` and otherwise picks `Bitplane`.
    pub fn resolve(self) -> Tier1Engine {
        match self {
            Tier1Engine::Auto => env_override().unwrap_or(Tier1Engine::Bitplane),
            forced => forced,
        }
    }
}

/// Packed 3x3 neighborhood bit layout, shared by the window gather and the
/// context LUTs: bit 0 = NW, 1 = N, 2 = NE, 3 = W, 4 = self, 5 = E,
/// 6 = SW, 7 = S, 8 = SE. A coefficient's slice is `(win >> 3*i) & 511`
/// where `i` is its row within the gathered window.
const NB_SELF: u32 = 1 << 4;
/// All eight neighbor bits (self excluded).
const NB_NEIGHBORS: u32 = 0b1_1110_1111;
/// Neighborhood restricted to the rows above (vertically causal mode hides
/// the stripe below, i.e. the south row of a stripe's last coefficient).
const NB_NO_SOUTH: u32 = 0b0_0011_1111;

/// Zero-coding context table per band: `zc_lut()[band][nb]` for a 9-bit
/// packed neighborhood (self bit ignored). Generated from [`zc_context`],
/// so the branchy Table D.1 logic runs 1536 times at startup instead of
/// once per coded decision.
// AUDIT(fn): startup LUT generation — `bi` enumerates the 3-row table
// and the neighbor-bit sums are bounded by the 9-bit window.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
fn zc_lut() -> &'static [[u8; 512]; 3] {
    static LUT: OnceLock<[[u8; 512]; 3]> = OnceLock::new();
    LUT.get_or_init(|| {
        let mut t = [[0u8; 512]; 3];
        for (bi, band) in [BandCtx::LlLh, BandCtx::Hl, BandCtx::Hh]
            .into_iter()
            .enumerate()
        {
            // AUDIT: `bi` enumerates a 3-element array; `t` has 3 rows.
            for (nb, slot) in t[bi].iter_mut().enumerate() {
                let b = |i: usize| (nb >> i) as u32 & 1;
                let h = b(3) + b(5);
                let v = b(1) + b(7);
                let d = b(0) + b(2) + b(6) + b(8);
                *slot = zc_context(band, h, v, d) as u8;
            }
        }
        t
    })
}

/// LUT row index of a [`BandCtx`] in [`zc_lut`].
fn band_index(band: BandCtx) -> usize {
    match band {
        BandCtx::LlLh => 0,
        BandCtx::Hl => 1,
        BandCtx::Hh => 2,
    }
}

/// Sign-coding table: `sc_lut()[idx] = (ctx << 1) | xor` for index bits
/// 0 = sigW, 1 = sigE, 2 = sigN, 3 = sigS, 4..=7 the matching sign bits
/// (set = negative). Insignificant neighbors' sign bits are don't-care.
/// Generated from [`sc_context`].
// AUDIT(fn): startup LUT generation — contributions are in {-1, 0, 1}
// before the clamp, so the sums cannot overflow.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
fn sc_lut() -> &'static [u8; 256] {
    static LUT: OnceLock<[u8; 256]> = OnceLock::new();
    LUT.get_or_init(|| {
        let mut t = [0u8; 256];
        for (idx, slot) in t.iter_mut().enumerate() {
            let b = |i: usize| (idx >> i) as i32 & 1;
            let con = |sig: i32, neg: i32| sig * (1 - 2 * neg);
            let hc = (con(b(0), b(4)) + con(b(1), b(5))).clamp(-1, 1);
            let vc = (con(b(2), b(6)) + con(b(3), b(7))).clamp(-1, 1);
            let (sc, xor) = sc_context(hc, vc);
            *slot = ((sc as u8) << 1) | xor;
        }
        t
    })
}

/// Reusable word-array scratch for the bitplane engine.
///
/// Every array is rows-major with one guard row above and below the block
/// (permanently zero, standing for the out-of-block border), `wpr` words
/// per row. `bitp` holds the magnitude bit-planes, planes-major, without
/// guard rows (it is never consulted for neighbors).
pub(crate) struct BitplaneScratch {
    w: usize,
    h: usize,
    wpr: usize,
    /// Live significance bits.
    sig: Vec<u64>,
    /// Sign bits (static after setup; set = negative).
    neg: Vec<u64>,
    /// Coded-in-this-plane's-SPP bits (cleared each plane).
    visited: Vec<u64>,
    /// Snapshot of `sig` at the current plane's start.
    sigstart: Vec<u64>,
    /// Snapshot of `sig` at the previous plane's start.
    sigprev: Vec<u64>,
    /// Magnitude bit-planes: `bitp[(plane * h + y) * wpr + wi]`.
    bitp: Vec<u64>,
    /// Stripe-interleaved magnitude copy: a column's [`STRIPE_HEIGHT`]
    /// values sit in one 16-byte chunk (`smag[((y/4 * w + x) * 4) | y%4]`),
    /// so the column-major pass visits hit one cache line where the
    /// row-major layout touched four lines 256 bytes apart.
    smag: Vec<u32>,
    /// Per-stripe scratch: OR of consulted significance rows.
    rowor: Vec<u64>,
    /// Per-stripe scratch: active-column / run masks.
    colmask: Vec<u64>,
    aux: Vec<u64>,
    aux2: Vec<u64>,
    /// Per-pass refinement-gain table (see `mag_ref_pass`).
    rgain: Vec<f64>,
}

impl BitplaneScratch {
    // AUDIT(hot): setup-time — empty vectors, no heap until `reset`
    // sizes them; one scratch lives per coder and is recycled across
    // blocks.
    pub(crate) fn new() -> Self {
        Self {
            w: 0,
            h: 0,
            wpr: 0,
            sig: Vec::new(),
            neg: Vec::new(),
            visited: Vec::new(),
            sigstart: Vec::new(),
            sigprev: Vec::new(),
            bitp: Vec::new(),
            smag: Vec::new(),
            rowor: Vec::new(),
            colmask: Vec::new(),
            aux: Vec::new(),
            aux2: Vec::new(),
            rgain: Vec::new(),
        }
    }

    /// Re-dimension for a `w`×`h` block with `planes` magnitude planes and
    /// zero all state, keeping allocations when large enough.
    // AUDIT(hot): amortized — every buffer is clear + resize over
    // recycled capacity; steady state allocates nothing (oracle-checked).
    // AUDIT(fn): encoder side — sizes derive from the caller-validated
    // block geometry (w, h <= 1024, planes <= MAX_PLANES), far below
    // overflow range.
    #[allow(clippy::arithmetic_side_effects)]
    fn reset(&mut self, w: usize, h: usize, planes: usize) {
        self.w = w;
        self.h = h;
        self.wpr = w.div_ceil(64);
        let rows = (h + 2) * self.wpr;
        for buf in [
            &mut self.sig,
            &mut self.neg,
            &mut self.visited,
            &mut self.sigstart,
            &mut self.sigprev,
        ] {
            buf.clear();
            buf.resize(rows, 0);
        }
        self.bitp.clear();
        self.bitp.resize(planes * h * self.wpr, 0);
        self.smag.clear();
        self.smag
            .resize(h.div_ceil(STRIPE_HEIGHT) * w * STRIPE_HEIGHT, 0);
        for buf in [
            &mut self.rowor,
            &mut self.colmask,
            &mut self.aux,
            &mut self.aux2,
        ] {
            buf.clear();
            buf.resize(self.wpr, 0);
        }
    }

    /// Word offset of in-block row `y` (guard row 0 sits above).
    #[inline]
    fn row(&self, y: usize) -> usize {
        // AUDIT: y < h and wpr * (h + 2) is the allocation size.
        (y.wrapping_add(1)).wrapping_mul(self.wpr)
    }

    /// Word offset of row `y` of `plane` in `bitp`.
    #[inline]
    fn prow(&self, plane: u8, y: usize) -> usize {
        // AUDIT: plane < planes, y < h; the product is the bitp layout.
        ((plane as usize).wrapping_mul(self.h).wrapping_add(y)).wrapping_mul(self.wpr)
    }

    /// Magnitude of `(x, y)` from the stripe-interleaved copy.
    // AUDIT(fn): x < w and y < h index inside the copy by construction.
    #[allow(clippy::indexing_slicing)]
    #[inline]
    fn smag_at(&self, x: usize, y: usize) -> u32 {
        // AUDIT: x < w and y < h index inside the copy by construction;
        // the shifts encode STRIPE_HEIGHT == 4.
        self.smag[(((y >> 2).wrapping_mul(self.w).wrapping_add(x)) << 2) | (y & 3)]
    }

    /// Valid-column mask for word `wi` (bits at and above `w` cleared).
    #[inline]
    fn tail(&self, wi: usize) -> u64 {
        let used = self.w.wrapping_sub(wi.wrapping_shl(6));
        if used >= 64 {
            u64::MAX
        } else {
            // AUDIT: used in 1..=63 here — wi indexes a word that covers at
            // least one in-block column.
            (1u64 << used).wrapping_sub(1)
        }
    }
}

/// Bits `x-1`, `x`, `x+1` of the row starting at word offset `base`
/// (result bit 0 = west, bit 1 = center, bit 2 = east). Word-boundary and
/// block-edge reads resolve to 0 through the zero padding invariant (bits
/// `>= w` of a row's last word are never set).
// AUDIT(fn): `base + wi` stays inside the row (wi < wpr is checked on both
// cross-word reads); shifts are by values in 0..=63 by construction.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
#[inline]
fn get3(buf: &[u64], base: usize, wpr: usize, x: usize) -> u32 {
    let wi = x >> 6;
    let sh = x & 63;
    let w = buf[base + wi];
    if sh == 0 {
        let west = if wi == 0 { 0 } else { buf[base + wi - 1] >> 63 };
        (((w & 3) << 1) | west) as u32
    } else if sh == 63 {
        let east = if wi + 1 < wpr {
            buf[base + wi + 1] & 1
        } else {
            0
        };
        (((w >> 62) & 3) | (east << 2)) as u32
    } else {
        ((w >> (sh - 1)) & 7) as u32
    }
}

/// Pack the 3-wide windows of `nrows` consecutive rows of column `x` into
/// one word: bits `3j .. 3j+3` are (west, center, east) of the row at word
/// offset `top + j*wpr` (see the `NB_*` layout constants). Single-word rows
/// — every block 64 columns wide or narrower — take a contiguous-slice fast
/// path: one bounds check covers the whole gather.
// AUDIT(fn): `top + nrows*wpr` stays inside the guard-padded buffer (the
// caller gathers at most rows y0-1 ..= ymax of an in-block stripe); `sh`
// and `3*j` shifts are bounded by 63 / 15.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
#[inline]
fn gather_win(buf: &[u64], top: usize, wpr: usize, nrows: usize, x: usize) -> u32 {
    let sh = x & 63;
    let mut win = 0u32;
    if wpr == 1 {
        let rows = &buf[top..top + nrows];
        if sh == 0 {
            for (j, &r) in rows.iter().enumerate() {
                win |= (((r & 3) << 1) as u32) << (3 * j);
            }
        } else if sh == 63 {
            for (j, &r) in rows.iter().enumerate() {
                win |= (((r >> 62) & 3) as u32) << (3 * j);
            }
        } else {
            for (j, &r) in rows.iter().enumerate() {
                win |= (((r >> (sh - 1)) & 7) as u32) << (3 * j);
            }
        }
    } else {
        let mut base = top;
        for j in 0..nrows {
            win |= get3(buf, base, wpr, x) << (3 * j);
            base += wpr;
        }
    }
    win
}

/// [`gather_win`] from per-word row registers instead of memory: `regs[j]`
/// holds the word of row `j`, `sh` the column's bit position within it.
/// For `sh == 0` / `sh == 63` the west / east neighbor is taken as 0,
/// which is only correct at the block border — callers at interior word
/// boundaries of multi-word rows must use the memory gather instead.
// AUDIT(fn): regs is a fixed 6-word array, nrows <= 6; shifts bounded by
// 62 / 15.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
#[inline]
fn win_regs(regs: &[u64; STRIPE_HEIGHT + 2], sh: usize) -> u32 {
    // All six rows are extracted unconditionally: rows past a partial
    // stripe's end are zero in `regs`, so their slices contribute nothing
    // and the fixed trip count lets the extraction unroll.
    let mut win = 0u32;
    if sh == 0 {
        for (j, &r) in regs.iter().enumerate() {
            win |= (((r & 3) << 1) as u32) << (3 * j);
        }
    } else if sh == 63 {
        for (j, &r) in regs.iter().enumerate() {
            win |= (((r >> 62) & 3) as u32) << (3 * j);
        }
    } else {
        for (j, &r) in regs.iter().enumerate() {
            win |= (((r >> (sh - 1)) & 7) as u32) << (3 * j);
        }
    }
    win
}

/// Bit `x` of the row starting at `base`.
// AUDIT(fn): base + (x >> 6) is inside the row for x < w.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
#[inline]
fn bit_at(buf: &[u64], base: usize, x: usize) -> u64 {
    (buf[base + (x >> 6)] >> (x & 63)) & 1
}

/// Set bit `x` of the row starting at `base`.
// AUDIT(fn): as `bit_at`.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
#[inline]
fn set_bit(buf: &mut [u64], base: usize, x: usize) {
    buf[base + (x >> 6)] |= 1u64 << (x & 63);
}

/// The bitplane engine's per-block coding state (sink + contexts + the
/// word arrays), shared by the three pass drivers.
struct Coder<'a> {
    bp: &'a mut BitplaneScratch,
    ctx: [CtxState; NUM_CTX],
    sink: Sink,
    opts: Tier1Options,
    /// Zero-coding LUT row for this block's band.
    zc_tab: &'static [u8; 512],
    /// Sign-coding LUT.
    sc_tab: &'static [u8; 256],
}

impl Coder<'_> {
    /// Magnitude bit of `(x, y)` at `plane`.
    #[inline]
    fn mag_bit(&self, x: usize, y: usize, plane: u8) -> u8 {
        bit_at(&self.bp.bitp, self.bp.prow(plane, y), x) as u8
    }

    /// Code significance (ZC) + possible sign (SC) of one coefficient at
    /// `plane` from its packed, causally masked neighborhood slice `nb`
    /// (self bit clear) and its pre-fetched magnitude bit; returns
    /// `(distortion_gain, became_significant)`.
    // AUDIT(fn): encoder side — the LUT holds ZC indices < NUM_CTX by
    // zc_context's contract; nb is masked to 9 bits.
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    #[inline]
    fn code_sig_bit_nb(&mut self, x: usize, y: usize, plane: u8, nb: u32, bit: u8) -> (f64, bool) {
        let zc = self.zc_tab[(nb & 511) as usize] as usize;
        self.sink.decision(&mut self.ctx[zc], bit);
        if bit == 1 {
            (self.code_sign_and_mark_nb(x, y, plane, nb), true)
        } else {
            (0.0, false)
        }
    }

    /// Sign coding for a coefficient turning significant whose (causally
    /// masked) neighborhood slice is `nb`; marks significance and returns
    /// the distortion reduction. Sign bits of insignificant neighbors are
    /// don't-care in the LUT, so they are read unmasked; a causally hidden
    /// south neighbor has its significance bit already cleared in `nb`,
    /// which zeroes its contribution exactly as the reference does.
    // AUDIT(fn): encoder side — sc_lut packs contexts 9..=13 < NUM_CTX;
    // row offsets are guarded (north/south of in-block rows exist);
    // `smag_at` indexes the caller-validated magnitude copy.
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    #[inline]
    fn code_sign_and_mark_nb(&mut self, x: usize, y: usize, plane: u8, nb: u32) -> f64 {
        let base = self.bp.row(y);
        let wpr = self.bp.wpr;
        let cn = get3(&self.bp.neg, base, wpr, x);
        let nn = bit_at(&self.bp.neg, base - wpr, x) as u32;
        let sn = bit_at(&self.bp.neg, base + wpr, x) as u32;
        let idx = ((nb >> 3) & 1)        // sigW
            | (((nb >> 5) & 1) << 1)     // sigE
            | (((nb >> 1) & 1) << 2)     // sigN
            | (((nb >> 7) & 1) << 3)     // sigS
            | ((cn & 1) << 4)            // negW
            | (((cn >> 2) & 1) << 5)     // negE
            | (nn << 6)                  // negN
            | (sn << 7); // negS
        let v = self.sc_tab[idx as usize];
        self.sink.sign(
            &mut self.ctx[(v >> 1) as usize],
            v & 1,
            ((cn >> 1) & 1) as u8,
        );
        set_bit(&mut self.bp.sig, base, x);
        sig_distortion_gain(self.bp.smag_at(x, y), plane)
    }
}

/// Encode one block through the bitplane engine, appending pass records and
/// segment bytes to `out` (whose `passes`/`data` the caller cleared).
///
/// `mag` is the magnitude plane, `coeffs` the signed input (for sign
/// setup), `msb_planes >= 1` the coded plane count — all validated by
/// [`crate::BlockCoder`], which also owns `seg_buf`, the recycled segment
/// allocation.
// The wide signature is deliberate: every argument is a distinct borrow
// of caller-owned scratch, so bundling them would just add a struct
// whose only job is to be destructured here.
#[allow(clippy::too_many_arguments)]
// AUDIT(fn): encoder side — indices derive from the validated geometry
// (w * h == coeffs.len() == mag.len()); per-plane and per-stripe offsets
// are products of in-range factors.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
// AUDIT(hot): all growth amortized — pass records and coded bytes land
// in the caller's recycled `EncodedBlock` buffers and the MQ/raw sinks
// rebuild over the previous segment's storage; the counting-allocator
// oracle pins the steady state at 0 allocations per block.
pub(crate) fn encode_block_into(
    bp: &mut BitplaneScratch,
    mag: &[u32],
    coeffs: &[i32],
    w: usize,
    h: usize,
    band: BandCtx,
    opts: Tier1Options,
    msb_planes: u8,
    seg_buf: &mut Vec<u8>,
    mut profile: Option<&mut Tier1Profile>,
    out: &mut EncodedBlock,
) {
    bp.reset(w, h, msb_planes as usize);
    // Scatter magnitudes into bit-planes and signs into the sign plane,
    // and build the stripe-interleaved magnitude copy the passes read.
    // Plane words accumulate in registers across each 64-column chunk and
    // store once per plane, instead of a bounds-checked read-modify-write
    // per set magnitude bit.
    let planes = msb_planes as usize;
    for y in 0..h {
        let nbase = bp.row(y);
        let sbase = ((y >> 2) * w) << 2 | (y & 3);
        for wi in 0..bp.wpr {
            let x0 = wi << 6;
            let xe = (x0 + 64).min(w);
            let mut acc = [0u64; 32];
            let mut negw = 0u64;
            for x in x0..xe {
                let k = y * w + x;
                let mut m = mag[k];
                bp.smag[sbase + (x << 2)] = m;
                let col = 1u64 << (x & 63);
                while m != 0 {
                    acc[m.trailing_zeros() as usize] |= col;
                    m &= m - 1;
                }
                negw |= col & (coeffs[k] >> 31) as u64;
            }
            for (p, &a) in acc.iter().enumerate().take(planes) {
                if a != 0 {
                    let pb = bp.prow(p as u8, y) + wi;
                    bp.bitp[pb] = a;
                }
            }
            bp.neg[nbase + wi] = negw;
        }
    }

    let mut enc = Coder {
        bp,
        ctx: initial_states(),
        sink: Sink::Mq(MqEncoder::from_recycled(std::mem::take(seg_buf))),
        opts,
        zc_tab: &zc_lut()[band_index(band)],
        sc_tab: sc_lut(),
    };

    let passes = &mut out.passes;
    let data = &mut out.data;
    let mut emit = |enc: &mut Coder, kind, plane, dd: f64, next_raw: bool| {
        let sink = std::mem::replace(&mut enc.sink, Sink::Raw(RawEncoder::new()));
        if enc.opts.reset_contexts {
            enc.ctx = initial_states();
        }
        let seg = sink.flush();
        passes.push(PassInfo {
            kind,
            plane,
            len: seg.len().max(1),
            delta_distortion: dd,
        });
        if seg.is_empty() {
            data.push(0);
        } else {
            data.extend_from_slice(&seg);
        }
        enc.sink = if next_raw {
            Sink::Raw(RawEncoder::from_recycled(seg))
        } else {
            Sink::Mq(MqEncoder::from_recycled(seg))
        };
    };

    for plane in (0..msb_planes).rev() {
        // New plane: drop visited marks, snapshot significance.
        enc.bp.visited.iter_mut().for_each(|w| *w = 0);
        std::mem::swap(&mut enc.bp.sigstart, &mut enc.bp.sigprev);
        enc.bp.sigstart.copy_from_slice(&enc.bp.sig);

        let first_plane = plane + 1 == msb_planes;
        let bypassed = opts.bypass && in_bypass_region(plane, msb_planes);
        if !first_plane {
            let t = profile.as_ref().map(|_| std::time::Instant::now());
            let d0 = enc.sink.decisions();
            let dd = sig_prop_pass(&mut enc, plane);
            if let (Some(p), Some(t)) = (profile.as_deref_mut(), t) {
                p.sig_prop_secs += t.elapsed().as_secs_f64();
                p.sig_prop_decisions += enc.sink.decisions() - d0;
            }
            emit(&mut enc, PassKind::SigProp, plane, dd, bypassed);

            let t = profile.as_ref().map(|_| std::time::Instant::now());
            let d0 = enc.sink.decisions();
            let dd = mag_ref_pass(&mut enc, plane);
            if let (Some(p), Some(t)) = (profile.as_deref_mut(), t) {
                p.mag_ref_secs += t.elapsed().as_secs_f64();
                p.mag_ref_decisions += enc.sink.decisions() - d0;
            }
            emit(&mut enc, PassKind::MagRef, plane, dd, false);
        }
        let t = profile.as_ref().map(|_| std::time::Instant::now());
        let d0 = enc.sink.decisions();
        let dd = cleanup_pass(&mut enc, plane);
        if let (Some(p), Some(t)) = (profile.as_deref_mut(), t) {
            p.cleanup_secs += t.elapsed().as_secs_f64();
            p.cleanup_decisions += enc.sink.decisions() - d0;
        }
        let next_raw = opts.bypass && plane > 0 && in_bypass_region(plane - 1, msb_planes);
        emit(&mut enc, PassKind::Cleanup, plane, dd, next_raw);
    }

    *seg_buf = enc.sink.flush();
}

/// Significance-propagation pass over the packed state.
///
/// Stripes always start at multiples of [`STRIPE_HEIGHT`], so the causally
/// hidden south row — `(y+1) % 4 == 0` under stripe-causal formation —
/// is exactly in-stripe row index 3; the per-row mask below exploits that.
// AUDIT(fn): encoder side — stripe offsets and word indices are bounded by
// the scratch dimensions established in `reset`; column indices iterate
// set bits of masks whose padding bits are cleared via `tail`; window
// shifts are bounded by 3*3+4.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
fn sig_prop_pass(enc: &mut Coder, plane: u8) -> f64 {
    let (w, h, wpr) = (enc.bp.w, enc.bp.h, enc.bp.wpr);
    let causal = enc.opts.stripe_causal;
    let mut dd = 0.0;
    let mut y0 = 0;
    while y0 < h {
        let ymax = (y0 + STRIPE_HEIGHT).min(h);
        let rows = ymax - y0;
        for wi in 0..wpr {
            let top = y0 * wpr; // row y0 - 1 (the guard row covers y0 = 0)
                                // Per-word row registers: significance rows y0-1 ..= ymax
                                // (memory is written through on new significance and the
                                // registers updated in step, so both stay live), this plane's
                                // center magnitude bits, and batched visited updates (flushed
                                // once per word; nothing reads visited until cleanup).
            let mut regs = [0u64; STRIPE_HEIGHT + 2];
            for (j, reg) in regs.iter_mut().enumerate().take(rows + 2) {
                *reg = enc.bp.sig[top + j * wpr + wi];
            }
            // Exact member columns at pass start: a member row bit is
            // insignificant with a significant neighbor — per row, the or
            // of the dilated row above, the dilated row below (hidden from
            // the last in-stripe row under stripe-causal formation), and
            // the east/west bits of the row itself, anded with ~self.
            // Columns made members mid-pass by west-neighbor significance
            // re-enter via the `bits |=` below (same word) or are caught
            // by the next word's lazy computation seeing the updated sig
            // (cross-word west inputs read live memory).
            let mut bits = 0u64;
            for i in 0..rows {
                let (p, c, n) = (regs[i], regs[i + 1], regs[i + 2]);
                let mut hp = p | (p << 1) | (p >> 1);
                let mut hc = (c << 1) | (c >> 1);
                let mut hn = n | (n << 1) | (n >> 1);
                if wpr > 1 {
                    if wi > 0 {
                        hp |= enc.bp.sig[top + i * wpr + wi - 1] >> 63;
                        hc |= enc.bp.sig[top + (i + 1) * wpr + wi - 1] >> 63;
                        hn |= enc.bp.sig[top + (i + 2) * wpr + wi - 1] >> 63;
                    }
                    if wi + 1 < wpr {
                        hp |= enc.bp.sig[top + i * wpr + wi + 1] << 63;
                        hc |= enc.bp.sig[top + (i + 1) * wpr + wi + 1] << 63;
                        hn |= enc.bp.sig[top + (i + 2) * wpr + wi + 1] << 63;
                    }
                }
                let mut nb = hp | hc;
                if !(causal && i + 1 == STRIPE_HEIGHT) {
                    nb |= hn;
                }
                bits |= !c & nb;
            }
            bits &= enc.bp.tail(wi);
            if bits == 0 {
                continue;
            }
            let mut pm = [0u64; STRIPE_HEIGHT];
            for (i, pmw) in pm.iter_mut().enumerate() {
                if i < rows {
                    *pmw = enc.bp.bitp[enc.bp.prow(plane, y0 + i) + wi];
                }
            }
            let mut vup = [0u64; STRIPE_HEIGHT];
            while bits != 0 {
                let x = (wi << 6) | (bits.trailing_zeros() as usize);
                bits &= bits - 1;
                let sh = x & 63;
                let mut win = if wpr == 1 || (sh != 0 && sh != 63) {
                    win_regs(&regs, sh)
                } else {
                    gather_win(&enc.bp.sig, top, wpr, rows + 2, x)
                };
                for i in 0..rows {
                    if win & (NB_SELF << (3 * i)) != 0 {
                        continue; // already significant
                    }
                    let mut nb = (win >> (3 * i)) & NB_NEIGHBORS;
                    if causal && i + 1 == STRIPE_HEIGHT {
                        nb &= NB_NO_SOUTH;
                    }
                    if nb == 0 {
                        continue; // no significant neighbor: not a member
                    }
                    let y = y0 + i;
                    vup[i] |= 1u64 << sh;
                    let bit = ((pm[i] >> sh) & 1) as u8;
                    let (gain, newsig) = enc.code_sig_bit_nb(x, y, plane, nb, bit);
                    dd += gain;
                    if newsig {
                        win |= NB_SELF << (3 * i);
                        regs[i + 1] |= 1u64 << sh;
                        if x + 1 < w && (x + 1) >> 6 == wi {
                            // New significance reaches the next column; the
                            // current one is tracked in `win`, earlier
                            // columns match the reference scan order, and a
                            // next-word column is caught by that word's
                            // member computation reading the updated sig.
                            bits |= 1u64 << ((x + 1) & 63);
                        }
                    }
                }
            }
            for (i, &v) in vup.iter().enumerate() {
                if v != 0 {
                    let r = enc.bp.row(y0 + i) + wi;
                    enc.bp.visited[r] |= v;
                }
            }
        }
        y0 = ymax;
    }
    dd
}

/// Magnitude-refinement pass over the packed state: membership is the
/// plane-start significance snapshot, "first refinement" its predecessor.
/// All per-coefficient state — membership, first-refinement, magnitude
/// bits — comes from per-word row registers loaded once per 64 columns.
// AUDIT(fn): encoder side — offsets as in `sig_prop_pass`; `smag_at`
// indexes the validated magnitude copy.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
// AUDIT(hot): the refinement-gain LUT refill is amortized — `rgain` is
// recycled scratch and the extend is O(2^lut_bits) per pass, not per
// sample.
fn mag_ref_pass(enc: &mut Coder, plane: u8) -> f64 {
    let (h, w, wpr) = (enc.bp.h, enc.bp.w, enc.bp.wpr);
    let causal = enc.opts.stripe_causal;
    let raw = matches!(enc.sink, Sink::Raw(_));
    // The refinement gain depends only on the magnitude bits at and below
    // the refined plane — ref_distortion_gain(m, p) computes exclusively
    // with `m & ((2 << p) - 1)`, exactly (every intermediate is an
    // integer-valued f64), so a small per-plane table replaces the f64
    // pipeline per member with one load. Deep planes fall back inline.
    let lut_bits = (plane as usize).wrapping_add(1);
    let use_lut = lut_bits <= 11;
    let mask = if use_lut { (1usize << lut_bits) - 1 } else { 0 };
    if use_lut {
        enc.bp.rgain.clear();
        enc.bp
            .rgain
            .extend((0..=mask).map(|m| ref_distortion_gain(m as u32, plane)));
    }
    let mut dd = 0.0;
    let mut y0 = 0;
    while y0 < h {
        let ymax = (y0 + STRIPE_HEIGHT).min(h);
        let rows = ymax - y0;
        // `smag` stripe base: member magnitudes for column x live at
        // ((srow + x) << 2) | i, four contiguous u32s per column.
        let srow = (y0 >> 2) * w;
        for wi in 0..wpr {
            let mut ss = [0u64; STRIPE_HEIGHT];
            let mut sp = [0u64; STRIPE_HEIGHT];
            let mut pm = [0u64; STRIPE_HEIGHT];
            for i in 0..rows {
                let r = enc.bp.row(y0 + i) + wi;
                ss[i] = enc.bp.sigstart[r];
                sp[i] = enc.bp.sigprev[r];
                pm[i] = enc.bp.bitp[enc.bp.prow(plane, y0 + i) + wi];
            }
            let mut bits = (ss[0] | ss[1] | ss[2] | ss[3]) & enc.bp.tail(wi);
            if bits == 0 {
                continue;
            }
            // Significance rows for first-refinement contexts (static
            // during this pass — refinement never sets significance).
            // Only words holding a first refinement (ss & !sp) need the
            // neighborhood at all; after each member's first plane the
            // context is constant, so most words skip these six loads.
            let frw = ((ss[0] & !sp[0]) | (ss[1] & !sp[1]) | (ss[2] & !sp[2]) | (ss[3] & !sp[3]))
                & enc.bp.tail(wi);
            let mut regs = [0u64; STRIPE_HEIGHT + 2];
            if !raw && frw != 0 {
                for (j, reg) in regs.iter_mut().enumerate().take(rows + 2) {
                    *reg = enc.bp.sig[y0 * wpr + j * wpr + wi];
                }
            }
            while bits != 0 {
                let x = (wi << 6) | (bits.trailing_zeros() as usize);
                bits &= bits - 1;
                let sh = x & 63;
                let sb = (srow + x) << 2;
                if raw {
                    // Bypass fast path: refinement in raw mode is just the
                    // member coefficients' magnitude bits, context-free —
                    // gather the column and emit in one call.
                    let mut acc = 0u8;
                    let mut n = 0u8;
                    for i in 0..rows {
                        if (ss[i] >> sh) & 1 == 0 {
                            continue;
                        }
                        acc = (acc << 1) | (((pm[i] >> sh) & 1) as u8);
                        n += 1;
                        let m = enc.bp.smag[sb | i];
                        dd += if use_lut {
                            enc.bp.rgain[(m as usize) & mask]
                        } else {
                            ref_distortion_gain(m, plane)
                        };
                    }
                    if let Sink::Raw(raw_enc) = &mut enc.sink {
                        raw_enc.put_bits(acc, n);
                    }
                    continue;
                }
                for i in 0..rows {
                    if (ss[i] >> sh) & 1 == 0 {
                        continue;
                    }
                    let first = (sp[i] >> sh) & 1 == 0;
                    let mr = if first {
                        // The neighborhood only matters for first
                        // refinements.
                        let win = if wpr == 1 || (sh != 0 && sh != 63) {
                            win_regs(&regs, sh)
                        } else {
                            gather_win(&enc.bp.sig, y0 * wpr, wpr, rows + 2, x)
                        };
                        let mut nb = (win >> (3 * i)) & NB_NEIGHBORS;
                        if causal && i + 1 == STRIPE_HEIGHT {
                            nb &= NB_NO_SOUTH;
                        }
                        mr_context(true, nb != 0)
                    } else {
                        mr_context(false, false)
                    };
                    let bit = ((pm[i] >> sh) & 1) as u8;
                    enc.sink.decision(&mut enc.ctx[mr], bit);
                    let m = enc.bp.smag[sb | i];
                    dd += if use_lut {
                        enc.bp.rgain[(m as usize) & mask]
                    } else {
                        ref_distortion_gain(m, plane)
                    };
                }
            }
        }
        y0 = ymax;
    }
    dd
}

/// Cleanup pass over the packed state, with whole-column classification and
/// batched run-length-zero stretches.
// AUDIT(fn): encoder side — offsets as in `sig_prop_pass`.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
fn cleanup_pass(enc: &mut Coder, plane: u8) -> f64 {
    let (w, h, wpr) = (enc.bp.w, enc.bp.h, enc.bp.wpr);
    let causal = enc.opts.stripe_causal;
    let mut dd = 0.0;
    let mut y0 = 0;
    while y0 < h {
        let ymax = (y0 + STRIPE_HEIGHT).min(h);
        let full = ymax - y0 == STRIPE_HEIGHT;
        if !full {
            // Partial bottom stripe: no run-length mode; plain column scan.
            // Rows here never sit on a stripe-causal boundary ((y+1) % 4
            // != 0 for every partial-stripe row), so no south masking.
            let rows = ymax - y0;
            for x in 0..w {
                let mut win = gather_win(&enc.bp.sig, y0 * wpr, wpr, rows + 2, x);
                for i in 0..rows {
                    let y = y0 + i;
                    if win & (NB_SELF << (3 * i)) != 0
                        || bit_at(&enc.bp.visited, enc.bp.row(y), x) != 0
                    {
                        continue;
                    }
                    let nb = (win >> (3 * i)) & NB_NEIGHBORS;
                    let bit = enc.mag_bit(x, y, plane);
                    let (gain, newsig) = enc.code_sig_bit_nb(x, y, plane, nb, bit);
                    dd += gain;
                    if newsig {
                        win |= NB_SELF << (3 * i);
                    }
                }
            }
            y0 = ymax;
            continue;
        }

        // Column classification masks, all per stripe:
        //   quiet    — no coefficient has SIG or VISITED;
        //   done     — every coefficient has SIG or VISITED (emits nothing);
        //   nbr-free — no (causally visible) significant neighbor;
        //   zero     — no magnitude bit at this plane.
        // rl_zero = quiet & nbr-free & zero columns code a single RL-0
        // decision each and change no state, so maximal stretches of
        // rl_zero/done columns collapse into one encode_run call.
        for wi in 0..wpr {
            let mut or_flags = 0u64;
            let mut and_flags = u64::MAX;
            let mut or_bits = 0u64;
            for y in y0..ymax {
                let f = enc.bp.sig[enc.bp.row(y) + wi] | enc.bp.visited[enc.bp.row(y) + wi];
                or_flags |= f;
                and_flags &= f;
                or_bits |= enc.bp.bitp[enc.bp.prow(plane, y) + wi];
            }
            // Consulted significance rows: y0-1 ..= ymax (ymax invisible
            // when stripe-causal).
            let mut m = enc.bp.sig[y0 * wpr + wi]; // row y0 - 1
            for y in y0..ymax {
                m |= enc.bp.sig[enc.bp.row(y) + wi];
            }
            if !causal {
                m |= enc.bp.sig[enc.bp.row(ymax - 1) + wpr + wi]; // row ymax (or guard)
            }
            enc.bp.rowor[wi] = m;
            enc.bp.aux[wi] = !or_flags; // quiet
            enc.bp.aux2[wi] = and_flags; // done
            enc.bp.colmask[wi] = !or_bits; // zero at this plane
        }
        // Combine into the final column masks (the dilation of rowor is
        // computed word-locally so colmask can keep holding the zero mask).
        for wi in 0..wpr {
            let t = enc.bp.tail(wi);
            let src = &enc.bp.rowor;
            let m = src[wi];
            let mut nbr = m | (m << 1) | (m >> 1);
            if wi > 0 {
                nbr |= src[wi - 1] >> 63;
            }
            if wi + 1 < wpr {
                nbr |= src[wi + 1] << 63;
            }
            let quiet = enc.bp.aux[wi] & t;
            let done = enc.bp.aux2[wi] & t;
            let zero = enc.bp.colmask[wi] & t;
            let rl_ok = quiet & !nbr;
            enc.bp.aux[wi] = rl_ok & zero; // rl_zero
            enc.bp.aux2[wi] = (rl_ok & zero) | done; // run_ok
            enc.bp.colmask[wi] = rl_ok; // rl (column may still hold a 1 bit)
        }

        // Per-word row registers (magnitude bits, visited, significance
        // rows y0-1 ..= ymax), reloaded when the scan crosses into a new
        // word. Earlier words never change after the scan passes them, and
        // in-word changes are applied to `regs` in step with memory.
        let mut lw = usize::MAX;
        let mut pm = [0u64; STRIPE_HEIGHT];
        let mut vis = [0u64; STRIPE_HEIGHT];
        let mut regs = [0u64; STRIPE_HEIGHT + 2];
        let mut x = 0usize;
        while x < w {
            let wi = x >> 6;
            let sh = x & 63;
            if (enc.bp.aux2[wi] >> sh) & 1 != 0 {
                // Maximal run of rl_zero / done columns starting at x.
                let mut n: usize = 0; // RL-0 decisions in the run
                let mut xe = x;
                'run: while xe < w {
                    let wj = xe >> 6;
                    let shj = xe & 63;
                    let run_word = enc.bp.aux2[wj] >> shj;
                    let stop = (!run_word).trailing_zeros() as usize; // columns until a non-run bit
                    let span = stop.min(64 - shj).min(w - xe);
                    if span == 0 {
                        break 'run;
                    }
                    let rl_word = (enc.bp.aux[wj] >> shj)
                        & if span >= 64 {
                            u64::MAX
                        } else {
                            (1u64 << span) - 1
                        };
                    n += rl_word.count_ones() as usize;
                    xe += span;
                    if span < stop.min(64 - shj) || stop < 64 - shj {
                        break 'run;
                    }
                }
                if n > 0 {
                    enc.sink.run(&mut enc.ctx[CTX_RL], 0, n);
                }
                x = xe.max(x + 1);
                continue;
            }
            if wi != lw {
                for i in 0..STRIPE_HEIGHT {
                    pm[i] = enc.bp.bitp[enc.bp.prow(plane, y0 + i) + wi];
                    vis[i] = enc.bp.visited[enc.bp.row(y0 + i) + wi];
                }
                for (j, reg) in regs.iter_mut().enumerate() {
                    *reg = enc.bp.sig[y0 * wpr + j * wpr + wi];
                }
                lw = wi;
            }
            if (enc.bp.colmask[wi] >> sh) & 1 != 0 {
                // Run-length column with a 1 bit: RL-1, two UNI bits of the
                // first significant row, sign, then the remainder plainly.
                // The column is quiet, so the live window alone decides
                // skipping (no visited bits can exist here).
                let ri = (0..STRIPE_HEIGHT)
                    .find(|&i| (pm[i] >> sh) & 1 != 0)
                    .unwrap_or(STRIPE_HEIGHT - 1); // unreachable: zero mask was clear
                enc.sink.decision(&mut enc.ctx[CTX_RL], 1);
                let r = ri as u8;
                enc.sink.decision(&mut enc.ctx[CTX_UNI], (r >> 1) & 1);
                enc.sink.decision(&mut enc.ctx[CTX_UNI], r & 1);
                let mut win = if wpr == 1 || (sh != 0 && sh != 63) {
                    win_regs(&regs, sh)
                } else {
                    gather_win(&enc.bp.sig, y0 * wpr, wpr, STRIPE_HEIGHT + 2, x)
                };
                let mut nb = (win >> (3 * ri)) & NB_NEIGHBORS;
                if causal && ri + 1 == STRIPE_HEIGHT {
                    nb &= NB_NO_SOUTH;
                }
                dd += enc.code_sign_and_mark_nb(x, y0 + ri, plane, nb);
                win |= NB_SELF << (3 * ri);
                regs[ri + 1] |= 1u64 << sh;
                clear_run_bits(enc, x, w);
                for i in (ri + 1)..STRIPE_HEIGHT {
                    if win & (NB_SELF << (3 * i)) != 0 {
                        continue;
                    }
                    let mut nb = (win >> (3 * i)) & NB_NEIGHBORS;
                    if causal && i + 1 == STRIPE_HEIGHT {
                        nb &= NB_NO_SOUTH;
                    }
                    let bit = ((pm[i] >> sh) & 1) as u8;
                    let (gain, newsig) = enc.code_sig_bit_nb(x, y0 + i, plane, nb, bit);
                    dd += gain;
                    if newsig {
                        win |= NB_SELF << (3 * i);
                        regs[i + 1] |= 1u64 << sh;
                        clear_run_bits(enc, x, w);
                    }
                }
                x += 1;
                continue;
            }
            // Plain column.
            let mut win = if wpr == 1 || (sh != 0 && sh != 63) {
                win_regs(&regs, sh)
            } else {
                gather_win(&enc.bp.sig, y0 * wpr, wpr, STRIPE_HEIGHT + 2, x)
            };
            for i in 0..STRIPE_HEIGHT {
                if win & (NB_SELF << (3 * i)) != 0 || (vis[i] >> sh) & 1 != 0 {
                    continue;
                }
                let mut nb = (win >> (3 * i)) & NB_NEIGHBORS;
                if causal && i + 1 == STRIPE_HEIGHT {
                    nb &= NB_NO_SOUTH;
                }
                let bit = ((pm[i] >> sh) & 1) as u8;
                let (gain, newsig) = enc.code_sig_bit_nb(x, y0 + i, plane, nb, bit);
                dd += gain;
                if newsig {
                    win |= NB_SELF << (3 * i);
                    regs[i + 1] |= 1u64 << sh;
                    clear_run_bits(enc, x, w);
                }
            }
            x += 1;
        }
        y0 = ymax;
    }
    dd
}

/// New significance at column `x` reaches column `x + 1`: it is no longer
/// run-length eligible in this stripe.
// AUDIT(fn): word index bounded by wpr since x + 1 < w.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
#[inline]
fn clear_run_bits(enc: &mut Coder, x: usize, w: usize) {
    if x + 1 < w {
        let wj = (x + 1) >> 6;
        let m = !(1u64 << ((x + 1) & 63));
        enc.bp.aux[wj] &= m;
        enc.bp.aux2[wj] &= m;
        enc.bp.colmask[wj] &= m;
    }
}

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;

    #[test]
    fn parse_engine_token_covers_knob_vocabulary() {
        assert_eq!(
            parse_engine_token("reference"),
            Some(Tier1Engine::Reference)
        );
        assert_eq!(parse_engine_token("ref"), Some(Tier1Engine::Reference));
        assert_eq!(parse_engine_token("scalar"), Some(Tier1Engine::Reference));
        assert_eq!(parse_engine_token("bitplane"), Some(Tier1Engine::Bitplane));
        assert_eq!(parse_engine_token("bitmask"), Some(Tier1Engine::Bitplane));
        // Case-insensitive, whitespace-tolerant — matches PJ2K_SIMD.
        assert_eq!(
            parse_engine_token(" Bitplane "),
            Some(Tier1Engine::Bitplane)
        );
        assert_eq!(parse_engine_token("REF"), Some(Tier1Engine::Reference));
        // Garbage and empty are rejected (env_override warns, not here).
        assert_eq!(parse_engine_token("refrence"), None);
        assert_eq!(parse_engine_token(""), None);
        assert_eq!(parse_engine_token("auto"), None);
    }

    #[test]
    fn forced_engines_resolve_to_themselves() {
        assert_eq!(Tier1Engine::Reference.resolve(), Tier1Engine::Reference);
        assert_eq!(Tier1Engine::Bitplane.resolve(), Tier1Engine::Bitplane);
    }
}
