//! Tier-1 block encoder.

use crate::bitplane::Tier1Engine;
use crate::context::{
    initial_states, mr_context, sc_context, zc_context, BandCtx, CTX_RL, CTX_UNI, NUM_CTX,
};
use crate::state::{FlagGrid, NEG, NEWSIG, REFINED, SIG, VISITED};
use crate::{MAX_PLANES, STRIPE_HEIGHT};
use pj2k_mq::{CtxState, MqEncoder, RawEncoder};

/// Optional Tier-1 coding-style switches (ISO 15444-1 COD flags).
///
/// Both default to off, the configuration the paper's era used. Either
/// changes the produced bitstream, so they are signalled in the
/// codestream header by `pj2k-core`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tier1Options {
    /// Vertically stripe-causal context formation: contexts never consult
    /// coefficients of the next stripe, enabling stripe-pipelined
    /// hardware/software decoders.
    pub stripe_causal: bool,
    /// Reset all MQ contexts at every coding-pass boundary, making the
    /// passes independently decodable at the cost of slower adaptation.
    pub reset_contexts: bool,
    /// Selective arithmetic bypass ("lazy" coding): from the fifth
    /// most-significant bit-plane on, significance-propagation and
    /// refinement passes emit raw bits instead of MQ decisions — faster,
    /// slightly larger. Cleanup passes stay MQ-coded.
    pub bypass: bool,
}

/// Whether `plane` of a block with `msb_planes` coded planes is in the
/// bypass region (fifth most-significant plane and below).
#[inline]
pub(crate) fn in_bypass_region(plane: u8, msb_planes: u8) -> bool {
    plane + 5 <= msb_planes
}

/// The per-pass entropy sink: MQ codeword or raw segment.
pub(crate) enum Sink {
    Mq(MqEncoder),
    Raw(RawEncoder),
}

impl Sink {
    #[inline]
    pub(crate) fn decision(&mut self, ctx: &mut CtxState, bit: u8) {
        match self {
            Sink::Mq(m) => m.encode(ctx, bit),
            Sink::Raw(r) => r.put(bit),
        }
    }

    /// Code the same decision `n` times in this context — bit-identical to
    /// `n` [`Sink::decision`] calls, but the MQ side batches renorm-free
    /// MPS stretches into O(1) register updates per renormalization.
    #[inline]
    pub(crate) fn run(&mut self, ctx: &mut CtxState, bit: u8, n: usize) {
        match self {
            Sink::Mq(m) => m.encode_run(ctx, bit, n),
            Sink::Raw(r) => {
                for _ in 0..n {
                    r.put(bit);
                }
            }
        }
    }

    /// Sign coding: MQ uses the context/XOR scheme, raw emits the sign bit.
    #[inline]
    pub(crate) fn sign(&mut self, ctx: &mut CtxState, xor: u8, neg: u8) {
        match self {
            Sink::Mq(m) => m.encode(ctx, neg ^ xor),
            Sink::Raw(r) => r.put(neg),
        }
    }

    /// Decisions (MQ) or raw bits coded into the current segment.
    #[inline]
    pub(crate) fn decisions(&self) -> u64 {
        match self {
            Sink::Mq(m) => m.decisions(),
            Sink::Raw(r) => r.decisions(),
        }
    }

    pub(crate) fn flush(self) -> Vec<u8> {
        match self {
            Sink::Mq(m) => m.flush(),
            Sink::Raw(r) => r.flush(),
        }
    }
}

/// Per-pass-kind time and decision-count breakdown of Tier-1 coding,
/// accumulated across every block fed through a profiled entry point
/// ([`BlockCoder::encode_scratch_profiled_into`] and friends).
///
/// Seconds measure the pass body only (context formation + entropy
/// coding); decision counts are exact — MQ decisions or raw bits emitted
/// into that pass's segment. `bench_tier1` uses this for the per-pass and
/// per-component rows of its report.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Tier1Profile {
    /// Wall-clock seconds spent in significance-propagation passes.
    pub sig_prop_secs: f64,
    /// Wall-clock seconds spent in magnitude-refinement passes.
    pub mag_ref_secs: f64,
    /// Wall-clock seconds spent in cleanup passes.
    pub cleanup_secs: f64,
    /// Decisions/bits coded by significance-propagation passes.
    pub sig_prop_decisions: u64,
    /// Decisions/bits coded by magnitude-refinement passes.
    pub mag_ref_decisions: u64,
    /// Decisions/bits coded by cleanup passes.
    pub cleanup_decisions: u64,
}

impl Tier1Profile {
    /// Total profiled coding time.
    pub fn total_secs(&self) -> f64 {
        self.sig_prop_secs + self.mag_ref_secs + self.cleanup_secs
    }

    /// Total decisions/bits coded.
    pub fn total_decisions(&self) -> u64 {
        self.sig_prop_decisions
            .saturating_add(self.mag_ref_decisions)
            .saturating_add(self.cleanup_decisions)
    }
}

/// Which of the three coding passes produced a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassKind {
    /// Significance propagation (predicts new significance near existing).
    SigProp,
    /// Magnitude refinement (next bit of already-significant coefficients).
    MagRef,
    /// Cleanup (everything the other passes skipped; run-length coded).
    Cleanup,
}

/// Rate/distortion record of one coding pass.
#[derive(Debug, Clone, Copy)]
pub struct PassInfo {
    /// Pass type.
    pub kind: PassKind,
    /// Bit-plane index this pass coded (0 = LSB).
    pub plane: u8,
    /// Length in bytes of this pass's terminated MQ segment.
    pub len: usize,
    /// Squared-error reduction contributed by this pass, in units of the
    /// block's integer coefficient domain (scale by the subband's
    /// `(step * gain)^2` for pixel-domain MSE).
    pub delta_distortion: f64,
}

/// A fully coded code-block: per-pass terminated segments plus the
/// rate/distortion bookkeeping PCRD needs.
///
/// `Default` is the empty 0×0 block; it exists so callers can keep a pool
/// of `EncodedBlock`s and refill them through [`BlockCoder::encode_into`]
/// without per-block allocations.
#[derive(Debug, Clone, Default)]
pub struct EncodedBlock {
    /// Block width in coefficients.
    pub width: usize,
    /// Block height in coefficients.
    pub height: usize,
    /// Number of coded magnitude bit-planes (0 = all-zero block).
    pub msb_planes: u8,
    /// Per-pass metadata, in coding order.
    pub passes: Vec<PassInfo>,
    /// Concatenated pass segments (pass `i` occupies `passes[..i]`'s summed
    /// lengths onward).
    pub data: Vec<u8>,
    /// Squared error of the all-zero reconstruction (sum of squared
    /// magnitudes), same units as `delta_distortion`.
    pub initial_distortion: f64,
}

impl EncodedBlock {
    /// Cumulative byte count after including the first `n` passes.
    pub fn rate_after(&self, n: usize) -> usize {
        self.passes[..n].iter().map(|p| p.len).sum()
    }

    /// Remaining squared error after including the first `n` passes.
    pub fn distortion_after(&self, n: usize) -> f64 {
        self.initial_distortion
            - self.passes[..n]
                .iter()
                .map(|p| p.delta_distortion)
                .sum::<f64>()
    }

    /// Byte ranges (into `data`) of the first `n` passes.
    pub fn segment(&self, pass: usize) -> &[u8] {
        let start = self.rate_after(pass);
        let end = start + self.passes[pass].len;
        &self.data[start..end]
    }
}

/// Internal encoder state shared by the three passes.
struct BlockEncoder<'a> {
    mag: &'a [u32],
    grid: &'a mut FlagGrid,
    band: BandCtx,
    ctx: [CtxState; NUM_CTX],
    sink: Sink,
    opts: Tier1Options,
}

impl BlockEncoder<'_> {
    #[inline]
    fn bit(&self, x: usize, y: usize, plane: u8) -> u8 {
        ((self.mag[y * self.grid.w + x] >> plane) & 1) as u8
    }

    /// Whether (x, y)'s southern neighbors are causally invisible.
    #[inline]
    fn skip_south(&self, y: usize) -> bool {
        self.opts.stripe_causal && (y + 1).is_multiple_of(crate::STRIPE_HEIGHT)
    }

    /// Code significance (ZC) + possible sign (SC) of one coefficient at
    /// `plane`; returns the distortion reduction if it became significant.
    #[inline]
    fn code_significance(&mut self, x: usize, y: usize, plane: u8) -> f64 {
        let i = self.grid.idx(x, y);
        let ss = self.skip_south(y);
        let (h, v, d) = (
            self.grid.h_count(i),
            self.grid.v_count(i, ss),
            self.grid.d_count(i, ss),
        );
        let zc = zc_context(self.band, h, v, d);
        let bit = self.bit(x, y, plane);
        self.sink.decision(&mut self.ctx[zc], bit);
        if bit == 1 {
            self.code_sign_and_mark(x, y, plane)
        } else {
            0.0
        }
    }

    /// Sign coding and significance marking for a coefficient whose bit at
    /// `plane` is 1. Returns the distortion reduction.
    #[inline]
    fn code_sign_and_mark(&mut self, x: usize, y: usize, plane: u8) -> f64 {
        let i = self.grid.idx(x, y);
        let ss = self.skip_south(y);
        let (sc, xor) = sc_context(self.grid.hc(i), self.grid.vc(i, ss));
        let m = self.mag[y * self.grid.w + x];
        let neg = u8::from(self.neg(x, y));
        self.sink.sign(&mut self.ctx[sc], xor, neg);
        self.grid
            .set(i, SIG | NEWSIG | if neg == 1 { NEG } else { 0 });
        sig_distortion_gain(m, plane)
    }

    #[inline]
    fn neg(&self, x: usize, y: usize) -> bool {
        self.grid.get(self.grid.idx(x, y)) & NEG != 0
    }
}

/// Distortion reduction when a coefficient of magnitude `m` becomes
/// significant at `plane`: error drops from `m^2` to `(m - r)^2` with the
/// midpoint reconstruction `r = base + 2^plane / 2`.
#[inline]
pub(crate) fn sig_distortion_gain(m: u32, plane: u8) -> f64 {
    let base = (m >> plane) << plane;
    let r = f64::from(base) + half_step(plane);
    let e0 = f64::from(m) * f64::from(m);
    let e1 = (f64::from(m) - r) * (f64::from(m) - r);
    e0 - e1
}

/// Distortion reduction when a significant coefficient is refined at
/// `plane`.
#[inline]
pub(crate) fn ref_distortion_gain(m: u32, plane: u8) -> f64 {
    let base0 = (m >> (plane + 1)) << (plane + 1);
    let r0 = f64::from(base0) + half_step(plane + 1);
    let base1 = (m >> plane) << plane;
    let r1 = f64::from(base1) + half_step(plane);
    let e0 = (f64::from(m) - r0) * (f64::from(m) - r0);
    let e1 = (f64::from(m) - r1) * (f64::from(m) - r1);
    e0 - e1
}

/// Decoder-side midpoint offset for magnitudes known down to `plane`.
#[inline]
pub(crate) fn half_step(plane: u8) -> f64 {
    if plane == 0 {
        0.0
    } else {
        f64::from(1u32 << (plane - 1))
    }
}

/// Encode one code-block with default coding style (see
/// [`encode_block_with`]).
///
/// # Panics
/// Panics if `coeffs.len() != w * h`, the block is empty, or a magnitude
/// needs more than [`MAX_PLANES`] bit-planes.
pub fn encode_block(coeffs: &[i32], w: usize, h: usize, band: BandCtx) -> EncodedBlock {
    encode_block_with(coeffs, w, h, band, Tier1Options::default())
}

/// Encode one code-block of signed quantized coefficients (row-major,
/// `w * h` entries) from subband class `band` under the given coding
/// style.
///
/// # Panics
/// Panics if `coeffs.len() != w * h`, the block is empty, or a magnitude
/// needs more than [`MAX_PLANES`] bit-planes.
pub fn encode_block_with(
    coeffs: &[i32],
    w: usize,
    h: usize,
    band: BandCtx,
    opts: Tier1Options,
) -> EncodedBlock {
    BlockCoder::new().encode_with(coeffs, w, h, band, opts)
}

/// Reusable Tier-1 block-coding scratch arena.
///
/// One `BlockCoder` owns every buffer the block-coding loop needs — the
/// magnitude plane, the engine's per-coefficient state (the padded flag
/// grid of the reference engine or the packed word arrays of the bitplane
/// engine), a coefficient staging buffer, and the MQ/raw byte buffer that
/// is recycled from each terminated pass into the next. Coding a block
/// through a warm coder with [`BlockCoder::encode_into`] into a recycled
/// [`EncodedBlock`] allocates nothing at steady state; the value-returning
/// entry points cost only the returned block's own two buffers.
///
/// Workers in a parallel Tier-1 stage keep one coder each and feed it
/// every block they claim; the produced bitstream is bit-identical to the
/// single-use path, and — enforced by the engine-equivalence tests —
/// identical across [`Tier1Engine`]s.
pub struct BlockCoder {
    engine: Tier1Engine,
    mag: Vec<u32>,
    grid: FlagGrid,
    bp: crate::bitplane::BitplaneScratch,
    coeffs: Vec<i32>,
    seg_buf: Vec<u8>,
}

impl Default for BlockCoder {
    fn default() -> Self {
        Self::new()
    }
}

impl BlockCoder {
    /// Fresh coder with empty scratch buffers and the default
    /// ([`Tier1Engine::Auto`]) engine selection.
    pub fn new() -> Self {
        Self::with_engine(Tier1Engine::Auto)
    }

    /// Fresh coder pinned to `engine` (still subject to the `PJ2K_TIER1`
    /// override when `engine` is [`Tier1Engine::Auto`]).
    // AUDIT(hot): setup-time — empty vectors; per-block work recycles
    // them via clear/resize.
    pub fn with_engine(engine: Tier1Engine) -> Self {
        Self {
            engine,
            mag: Vec::new(),
            grid: FlagGrid::new(0, 0),
            bp: crate::bitplane::BitplaneScratch::new(),
            coeffs: Vec::new(),
            seg_buf: Vec::new(),
        }
    }

    /// The engine selection this coder was built with (possibly `Auto`).
    pub fn engine(&self) -> Tier1Engine {
        self.engine
    }

    /// Cleared coefficient staging buffer, for callers that assemble the
    /// block's coefficients themselves (e.g. strided extraction from a
    /// subband plane) before handing them to [`BlockCoder::encode_scratch`].
    pub fn coeff_scratch(&mut self) -> &mut Vec<i32> {
        self.coeffs.clear();
        &mut self.coeffs
    }

    /// Encode the block currently staged in [`BlockCoder::coeff_scratch`].
    ///
    /// # Panics
    /// As [`BlockCoder::encode_with`], with the staged buffer as `coeffs`.
    pub fn encode_scratch(
        &mut self,
        w: usize,
        h: usize,
        band: BandCtx,
        opts: Tier1Options,
    ) -> EncodedBlock {
        let mut out = EncodedBlock::default();
        self.encode_scratch_into(w, h, band, opts, &mut out);
        out
    }

    /// Allocation-free variant of [`BlockCoder::encode_scratch`]: refills
    /// `out` (any previous contents are discarded, capacity kept).
    pub fn encode_scratch_into(
        &mut self,
        w: usize,
        h: usize,
        band: BandCtx,
        opts: Tier1Options,
        out: &mut EncodedBlock,
    ) {
        let coeffs = std::mem::take(&mut self.coeffs);
        self.encode_inner(&coeffs, w, h, band, opts, None, out);
        self.coeffs = coeffs;
    }

    /// As [`BlockCoder::encode_scratch_into`], additionally accumulating a
    /// per-pass time/decision breakdown into `profile`.
    pub fn encode_scratch_profiled_into(
        &mut self,
        w: usize,
        h: usize,
        band: BandCtx,
        opts: Tier1Options,
        profile: &mut Tier1Profile,
        out: &mut EncodedBlock,
    ) {
        let coeffs = std::mem::take(&mut self.coeffs);
        self.encode_inner(&coeffs, w, h, band, opts, Some(profile), out);
        self.coeffs = coeffs;
    }

    /// Encode one code-block of signed quantized coefficients (row-major,
    /// `w * h` entries) from subband class `band` under the given coding
    /// style, reusing this coder's scratch buffers.
    ///
    /// # Panics
    /// Panics if `coeffs.len() != w * h`, the block is empty, or a
    /// magnitude needs more than [`MAX_PLANES`] bit-planes.
    pub fn encode_with(
        &mut self,
        coeffs: &[i32],
        w: usize,
        h: usize,
        band: BandCtx,
        opts: Tier1Options,
    ) -> EncodedBlock {
        let mut out = EncodedBlock::default();
        self.encode_inner(coeffs, w, h, band, opts, None, &mut out);
        out
    }

    /// Allocation-free variant of [`BlockCoder::encode_with`]: refills
    /// `out` (any previous contents are discarded, capacity kept).
    ///
    /// # Panics
    /// As [`BlockCoder::encode_with`].
    pub fn encode_into(
        &mut self,
        coeffs: &[i32],
        w: usize,
        h: usize,
        band: BandCtx,
        opts: Tier1Options,
        out: &mut EncodedBlock,
    ) {
        self.encode_inner(coeffs, w, h, band, opts, None, out);
    }

    /// Shared setup (magnitudes, plane count, distortion baseline) and
    /// engine dispatch. The wide signature mirrors the public
    /// `encode_with`/`encode_into` entry points plus the optional profile.
    #[allow(clippy::too_many_arguments)]
    fn encode_inner(
        &mut self,
        coeffs: &[i32],
        w: usize,
        h: usize,
        band: BandCtx,
        opts: Tier1Options,
        profile: Option<&mut Tier1Profile>,
        out: &mut EncodedBlock,
    ) {
        assert!(w > 0 && h > 0, "empty code-block"); // AUDIT(hot): per-block precondition, O(1) at entry.
        assert_eq!(coeffs.len(), w * h, "coefficient count mismatch"); // AUDIT(hot): per-block precondition.
        self.mag.clear();
        self.mag.resize(w * h, 0); // AUDIT(hot): amortized — recycled magnitude plane.
        let mut max_mag = 0u32;
        let mut initial_distortion = 0.0f64;
        for (k, &c) in coeffs.iter().enumerate() {
            let m = c.unsigned_abs();
            self.mag[k] = m;
            max_mag = max_mag.max(m);
            initial_distortion += f64::from(m) * f64::from(m);
        }
        let msb_planes = (32 - max_mag.leading_zeros()) as u8;
        assert!(msb_planes <= MAX_PLANES, "coefficient magnitude too large"); // AUDIT(hot): per-block contract check.
        out.width = w;
        out.height = h;
        out.msb_planes = msb_planes;
        out.initial_distortion = initial_distortion;
        out.passes.clear();
        out.data.clear();
        if msb_planes == 0 {
            return;
        }
        match self.engine.resolve() {
            Tier1Engine::Bitplane => crate::bitplane::encode_block_into(
                &mut self.bp,
                &self.mag,
                coeffs,
                w,
                h,
                band,
                opts,
                msb_planes,
                &mut self.seg_buf,
                profile,
                out,
            ),
            _ => self.encode_reference_into(coeffs, w, h, band, opts, msb_planes, profile, out),
        }
    }

    /// The reference per-coefficient flag-grid engine.
    #[allow(clippy::too_many_arguments)]
    // AUDIT(hot): all growth amortized — same recycled-buffer emit
    // protocol as the bitplane engine (pass records and coded bytes
    // reuse `EncodedBlock` and sink storage); oracle holds 0
    // allocations per block after warm-up.
    fn encode_reference_into(
        &mut self,
        coeffs: &[i32],
        w: usize,
        h: usize,
        band: BandCtx,
        opts: Tier1Options,
        msb_planes: u8,
        mut profile: Option<&mut Tier1Profile>,
        out: &mut EncodedBlock,
    ) {
        self.grid.reset(w, h);
        for (k, &c) in coeffs.iter().enumerate() {
            if c < 0 {
                let (x, y) = (k % w, k / w);
                self.grid.set(self.grid.idx(x, y), NEG);
            }
        }

        let passes = &mut out.passes;
        let data = &mut out.data;
        let mut enc = BlockEncoder {
            mag: &self.mag,
            grid: &mut self.grid,
            band,
            ctx: initial_states(),
            sink: Sink::Mq(MqEncoder::from_recycled(std::mem::take(&mut self.seg_buf))),
            opts,
        };

        let mut emit = |enc: &mut BlockEncoder, kind, plane, dd: f64, next_raw: bool| {
            // Park an allocation-free placeholder in the encoder, flush the
            // finished pass, then rebuild the next sink over the flushed
            // segment's storage.
            let sink = std::mem::replace(&mut enc.sink, Sink::Raw(RawEncoder::new()));
            if enc.opts.reset_contexts {
                enc.ctx = initial_states();
            }
            let seg = sink.flush();
            passes.push(PassInfo {
                kind,
                plane,
                len: seg.len().max(1),
                delta_distortion: dd,
            });
            if seg.is_empty() {
                data.push(0); // keep every terminated pass at least one byte
            } else {
                data.extend_from_slice(&seg);
            }
            enc.sink = if next_raw {
                Sink::Raw(RawEncoder::from_recycled(seg))
            } else {
                Sink::Mq(MqEncoder::from_recycled(seg))
            };
        };

        for plane in (0..msb_planes).rev() {
            enc.grid.clear_plane_flags();
            let first_plane = plane + 1 == msb_planes;
            let bypassed = opts.bypass && in_bypass_region(plane, msb_planes);
            if !first_plane {
                // SPP of this plane: raw when bypassed (the previous emit
                // set the sink accordingly).
                let t = profile.as_ref().map(|_| std::time::Instant::now());
                let d0 = enc.sink.decisions();
                let dd = sig_prop_pass(&mut enc, plane);
                if let (Some(p), Some(t)) = (profile.as_deref_mut(), t) {
                    p.sig_prop_secs += t.elapsed().as_secs_f64();
                    p.sig_prop_decisions += enc.sink.decisions() - d0;
                }
                emit(&mut enc, PassKind::SigProp, plane, dd, bypassed);
                let t = profile.as_ref().map(|_| std::time::Instant::now());
                let d0 = enc.sink.decisions();
                let dd = mag_ref_pass(&mut enc, plane);
                if let (Some(p), Some(t)) = (profile.as_deref_mut(), t) {
                    p.mag_ref_secs += t.elapsed().as_secs_f64();
                    p.mag_ref_decisions += enc.sink.decisions() - d0;
                }
                emit(&mut enc, PassKind::MagRef, plane, dd, false);
            }
            let t = profile.as_ref().map(|_| std::time::Instant::now());
            let d0 = enc.sink.decisions();
            let dd = cleanup_pass(&mut enc, plane);
            if let (Some(p), Some(t)) = (profile.as_deref_mut(), t) {
                p.cleanup_secs += t.elapsed().as_secs_f64();
                p.cleanup_decisions += enc.sink.decisions() - d0;
            }
            // Next pass is the SPP of the plane below: raw iff that plane
            // is bypassed.
            let next_raw = opts.bypass && plane > 0 && in_bypass_region(plane - 1, msb_planes);
            emit(&mut enc, PassKind::Cleanup, plane, dd, next_raw);
        }

        // The last emit armed a sink that never coded anything; reclaim its
        // byte buffer for the next block.
        let sink = enc.sink;
        self.seg_buf = sink.flush();
    }
}

/// Significance-propagation pass: insignificant coefficients with at least
/// one significant neighbor.
fn sig_prop_pass(enc: &mut BlockEncoder, plane: u8) -> f64 {
    let (w, h) = (enc.grid.w, enc.grid.h);
    let mut dd = 0.0;
    let mut y0 = 0;
    while y0 < h {
        let ymax = (y0 + STRIPE_HEIGHT).min(h);
        for x in 0..w {
            for y in y0..ymax {
                let i = enc.grid.idx(x, y);
                let f = enc.grid.get(i);
                if f & SIG == 0 && enc.grid.any_sig_neighbor(i, enc.skip_south(y)) {
                    dd += enc.code_significance(x, y, plane);
                    enc.grid.set(i, VISITED);
                }
            }
        }
        y0 = ymax;
    }
    dd
}

/// Magnitude-refinement pass: coefficients significant before this plane.
fn mag_ref_pass(enc: &mut BlockEncoder, plane: u8) -> f64 {
    let (w, h) = (enc.grid.w, enc.grid.h);
    let mut dd = 0.0;
    let mut y0 = 0;
    while y0 < h {
        let ymax = (y0 + STRIPE_HEIGHT).min(h);
        for x in 0..w {
            for y in y0..ymax {
                let i = enc.grid.idx(x, y);
                let f = enc.grid.get(i);
                if f & SIG != 0 && f & NEWSIG == 0 {
                    let first = f & REFINED == 0;
                    let mr = mr_context(first, enc.grid.any_sig_neighbor(i, enc.skip_south(y)));
                    let bit = enc.bit(x, y, plane);
                    enc.sink.decision(&mut enc.ctx[mr], bit);
                    enc.grid.set(i, REFINED);
                    dd += ref_distortion_gain(enc.mag[y * w + x], plane);
                }
            }
        }
        y0 = ymax;
    }
    dd
}

/// Cleanup pass: everything still uncoded at this plane, with run-length
/// shortcuts on all-quiet stripe columns.
fn cleanup_pass(enc: &mut BlockEncoder, plane: u8) -> f64 {
    let (w, h) = (enc.grid.w, enc.grid.h);
    let mut dd = 0.0;
    let mut y0 = 0;
    while y0 < h {
        let ymax = (y0 + STRIPE_HEIGHT).min(h);
        for x in 0..w {
            let full_stripe = ymax - y0 == STRIPE_HEIGHT;
            // Run-length mode: the whole 4-column is insignificant,
            // unvisited, and context-free.
            let rl_applicable = full_stripe
                && (y0..ymax).all(|y| {
                    let i = enc.grid.idx(x, y);
                    enc.grid.get(i) & (SIG | VISITED) == 0
                        && !enc.grid.any_sig_neighbor(i, enc.skip_south(y))
                });
            let mut y = y0;
            if rl_applicable {
                let first_sig = (y0..ymax).find(|&yy| enc.bit(x, yy, plane) == 1);
                match first_sig {
                    None => {
                        enc.sink.decision(&mut enc.ctx[CTX_RL], 0);
                        continue; // whole column stays zero
                    }
                    Some(ys) => {
                        enc.sink.decision(&mut enc.ctx[CTX_RL], 1);
                        let r = (ys - y0) as u8;
                        enc.sink.decision(&mut enc.ctx[CTX_UNI], (r >> 1) & 1);
                        enc.sink.decision(&mut enc.ctx[CTX_UNI], r & 1);
                        dd += enc.code_sign_and_mark(x, ys, plane);
                        y = ys + 1;
                    }
                }
            }
            for yy in y..ymax {
                let i = enc.grid.idx(x, yy);
                let f = enc.grid.get(i);
                if f & (SIG | VISITED) == 0 {
                    dd += enc.code_significance(x, yy, plane);
                }
            }
        }
        y0 = ymax;
    }
    dd
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_block_codes_to_nothing() {
        let blk = encode_block(&[0; 16], 4, 4, BandCtx::LlLh);
        assert_eq!(blk.msb_planes, 0);
        assert!(blk.passes.is_empty());
        assert!(blk.data.is_empty());
        assert_eq!(blk.initial_distortion, 0.0);
    }

    #[test]
    fn pass_structure_matches_planes() {
        // Max magnitude 5 -> 3 planes -> 1 + 3*2 = 7 passes.
        let mut coeffs = vec![0i32; 64];
        coeffs[10] = 5;
        coeffs[30] = -3;
        let blk = encode_block(&coeffs, 8, 8, BandCtx::Hh);
        assert_eq!(blk.msb_planes, 3);
        assert_eq!(blk.passes.len(), 7);
        assert_eq!(blk.passes[0].kind, PassKind::Cleanup);
        assert_eq!(blk.passes[0].plane, 2);
        assert_eq!(blk.passes[1].kind, PassKind::SigProp);
        assert_eq!(blk.passes[2].kind, PassKind::MagRef);
        assert_eq!(blk.passes[3].kind, PassKind::Cleanup);
        assert_eq!(blk.passes[6].plane, 0);
    }

    #[test]
    fn rates_are_cumulative_and_match_data() {
        let coeffs: Vec<i32> = (0..256).map(|i| ((i * 17) % 64) - 32).collect();
        let blk = encode_block(&coeffs, 16, 16, BandCtx::LlLh);
        let total: usize = blk.passes.iter().map(|p| p.len).sum();
        assert_eq!(total, blk.data.len());
        assert_eq!(blk.rate_after(blk.passes.len()), blk.data.len());
        assert_eq!(blk.rate_after(0), 0);
    }

    #[test]
    fn distortion_decreases_monotonically_to_zero() {
        let coeffs: Vec<i32> = (0..64).map(|i| (i - 32) * 3).collect();
        let blk = encode_block(&coeffs, 8, 8, BandCtx::Hl);
        let mut prev = blk.initial_distortion;
        for n in 1..=blk.passes.len() {
            let d = blk.distortion_after(n);
            assert!(d <= prev + 1e-9, "pass {n}: {d} > {prev}");
            prev = d;
        }
        // All passes included => full precision => zero residual error.
        assert!(prev.abs() < 1e-6, "final distortion {prev}");
    }

    #[test]
    fn distortion_gain_helpers() {
        // m=5, plane 2: base=4, r=4+2=6, e0=25, e1=1 -> gain 24.
        assert!((sig_distortion_gain(5, 2) - 24.0).abs() < 1e-12);
        // m=5 refined at plane 0: r0=4+1=5? base0=(5>>1)<<1=4, half(1)=1 -> r0=5, e0=0
        // r1=5+0=5, e1=0 -> gain 0.
        assert!((ref_distortion_gain(5, 0) - 0.0).abs() < 1e-12);
        // m=7 refined at plane 1: base0=4,r0=4+2=6,e0=1; base1=6,r1=6+1=7,e1=0 -> 1.
        assert!((ref_distortion_gain(7, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_coefficient_block() {
        let blk = encode_block(&[-9], 1, 1, BandCtx::LlLh);
        assert_eq!(blk.msb_planes, 4);
        assert_eq!(blk.passes.len(), 10);
        assert!(blk.initial_distortion == 81.0);
    }

    /// One coder reused across blocks of different sizes, bands, and
    /// coding styles must reproduce the single-use encoder bit for bit —
    /// the scratch arenas are an optimization, never a semantic change.
    #[test]
    fn reused_coder_matches_fresh_encoder() {
        let blocks: Vec<(Vec<i32>, usize, usize, BandCtx)> = vec![
            (
                (0..64).map(|i| ((i * 29) % 41) - 20).collect(),
                8,
                8,
                BandCtx::LlLh,
            ),
            (vec![0; 12], 4, 3, BandCtx::Hh), // all-zero block between real ones
            (
                (0..256).map(|i| ((i * 7919) % 513) - 256).collect(),
                16,
                16,
                BandCtx::Hl,
            ),
            (vec![-9], 1, 1, BandCtx::LlLh),
            (
                (0..60)
                    .map(|i| if i % 5 == 0 { 1000 - i } else { 0 })
                    .collect(),
                12,
                5,
                BandCtx::Hh,
            ),
        ];
        let styles = [
            Tier1Options::default(),
            Tier1Options {
                bypass: true,
                ..Default::default()
            },
            Tier1Options {
                stripe_causal: true,
                reset_contexts: true,
                bypass: true,
            },
        ];
        let mut coder = BlockCoder::new();
        for opts in styles {
            for (coeffs, w, h, band) in &blocks {
                let fresh = encode_block_with(coeffs, *w, *h, *band, opts);
                let reused = coder.encode_with(coeffs, *w, *h, *band, opts);
                assert_eq!(reused.data, fresh.data, "{opts:?} {w}x{h}");
                assert_eq!(reused.msb_planes, fresh.msb_planes);
                assert_eq!(reused.passes.len(), fresh.passes.len());
                for (a, b) in reused.passes.iter().zip(&fresh.passes) {
                    assert_eq!(a.kind, b.kind);
                    assert_eq!(a.plane, b.plane);
                    assert_eq!(a.len, b.len);
                    assert!((a.delta_distortion - b.delta_distortion).abs() < 1e-9);
                }
                // The staged-coefficients entry point is the same encoder.
                coder.coeff_scratch().extend_from_slice(coeffs);
                let staged = coder.encode_scratch(*w, *h, *band, opts);
                assert_eq!(staged.data, fresh.data);
            }
        }
    }

    #[test]
    fn segments_are_individually_addressable() {
        let coeffs: Vec<i32> = (0..64).map(|i| if i % 7 == 0 { 12 } else { 0 }).collect();
        let blk = encode_block(&coeffs, 8, 8, BandCtx::Hh);
        let mut reassembled = Vec::new();
        for p in 0..blk.passes.len() {
            reassembled.extend_from_slice(blk.segment(p));
        }
        assert_eq!(reassembled, blk.data);
    }
}
