//! Tier-1 block decoder (exact mirror of the encoder's pass structure).

use crate::context::{
    initial_states, mr_context, sc_context, zc_context, BandCtx, CTX_RL, CTX_UNI, NUM_CTX,
};
use crate::encoder::{in_bypass_region, Tier1Options};
use crate::state::{FlagGrid, NEG, NEWSIG, REFINED, SIG, VISITED};
use crate::STRIPE_HEIGHT;
use pj2k_mq::{CtxState, MqDecoder, RawDecoder};

/// The per-pass entropy source: MQ codeword or raw segment.
enum Source<'a> {
    Mq(MqDecoder<'a>),
    Raw(RawDecoder<'a>),
}

impl Source<'_> {
    #[inline]
    fn decision(&mut self, ctx: &mut CtxState) -> u8 {
        match self {
            Source::Mq(m) => m.decode(ctx),
            Source::Raw(r) => r.get(),
        }
    }

    /// Sign decoding: MQ uses the context/XOR scheme, raw reads the bit.
    #[inline]
    fn sign(&mut self, ctx: &mut CtxState, xor: u8) -> u8 {
        match self {
            Source::Mq(m) => m.decode(ctx) ^ xor,
            Source::Raw(r) => r.get(),
        }
    }
}

struct BlockDecoder {
    grid: FlagGrid,
    band: BandCtx,
    ctx: [CtxState; NUM_CTX],
    /// Decoded magnitude bits so far.
    mag: Vec<u32>,
    /// Lowest plane whose bit is known per coefficient (for midpoint
    /// reconstruction of truncated streams).
    known_plane: Vec<u8>,
    opts: Tier1Options,
}

impl BlockDecoder {
    #[inline]
    fn skip_south(&self, y: usize) -> bool {
        self.opts.stripe_causal && (y + 1).is_multiple_of(STRIPE_HEIGHT)
    }

    fn decode_significance(&mut self, mq: &mut Source, x: usize, y: usize, plane: u8) {
        let i = self.grid.idx(x, y);
        let ss = self.skip_south(y);
        let (h, v, d) = (
            self.grid.h_count(i),
            self.grid.v_count(i, ss),
            self.grid.d_count(i, ss),
        );
        let zc = zc_context(self.band, h, v, d);
        let bit = mq.decision(&mut self.ctx[zc]);
        if bit == 1 {
            self.decode_sign_and_mark(mq, x, y, plane);
        }
    }

    fn decode_sign_and_mark(&mut self, mq: &mut Source, x: usize, y: usize, plane: u8) {
        let i = self.grid.idx(x, y);
        let ss = self.skip_south(y);
        let (sc, xor) = sc_context(self.grid.hc(i), self.grid.vc(i, ss));
        let neg = mq.sign(&mut self.ctx[sc], xor);
        self.grid
            .set(i, SIG | NEWSIG | if neg == 1 { NEG } else { 0 });
        let k = y * self.grid.w + x;
        self.mag[k] = 1u32 << plane;
        self.known_plane[k] = plane;
    }
}

/// Decode a code-block with default coding style (see
/// [`decode_block_with`]).
///
/// # Panics
/// Panics on an empty block or more segments than the plane structure
/// admits.
pub fn decode_block(
    w: usize,
    h: usize,
    band: BandCtx,
    msb_planes: u8,
    segments: &[&[u8]],
) -> Vec<i32> {
    decode_block_with(w, h, band, msb_planes, segments, Tier1Options::default())
}

/// Decode a code-block from its pass segments under the given coding
/// style (must match the encoder's).
///
/// `segments` holds the first `n` coding passes' terminated MQ segments in
/// coding order (any prefix of the encoder's passes). Returns the
/// midpoint-reconstructed signed coefficients, row-major.
///
/// # Panics
/// Panics on an empty block or more segments than the plane structure
/// admits.
pub fn decode_block_with(
    w: usize,
    h: usize,
    band: BandCtx,
    msb_planes: u8,
    segments: &[&[u8]],
    opts: Tier1Options,
) -> Vec<i32> {
    assert!(w > 0 && h > 0, "empty code-block");
    if msb_planes == 0 {
        assert!(segments.is_empty(), "zero-plane block cannot carry passes");
        return vec![0; w * h];
    }
    let max_passes = 1 + 3 * (usize::from(msb_planes) - 1);
    assert!(
        segments.len() <= max_passes,
        "{} passes exceeds plane structure ({max_passes})",
        segments.len()
    );
    let mut dec = BlockDecoder {
        grid: FlagGrid::new(w, h),
        band,
        ctx: initial_states(),
        mag: vec![0; w * h],
        known_plane: vec![0; w * h],
        opts,
    };
    let mut seg_iter = segments.iter();
    let mut remaining = segments.len();

    'outer: for plane in (0..msb_planes).rev() {
        dec.grid.clear_plane_flags();
        let first_plane = plane + 1 == msb_planes;
        let bypassed = opts.bypass && in_bypass_region(plane, msb_planes);
        if !first_plane {
            for kind in 0..2 {
                if remaining == 0 {
                    break 'outer;
                }
                remaining -= 1;
                // lint:allow(hot_path_panic) -- `remaining` mirrors the
                // iterator length, so `next()` cannot be exhausted here.
                let seg: &[u8] = seg_iter.next().unwrap();
                let mut mq = if bypassed {
                    Source::Raw(RawDecoder::new(seg))
                } else {
                    Source::Mq(MqDecoder::new(seg))
                };
                if kind == 0 {
                    sig_prop_pass(&mut dec, &mut mq, plane);
                } else {
                    mag_ref_pass(&mut dec, &mut mq, plane);
                }
                if opts.reset_contexts {
                    dec.ctx = initial_states();
                }
            }
        }
        if remaining == 0 {
            break;
        }
        remaining -= 1;
        // lint:allow(hot_path_panic) -- `remaining` mirrors the iterator
        // length, so `next()` cannot be exhausted here.
        let mut mq = Source::Mq(MqDecoder::new(seg_iter.next().unwrap()));
        cleanup_pass(&mut dec, &mut mq, plane);
        if opts.reset_contexts {
            dec.ctx = initial_states();
        }
    }

    // Midpoint reconstruction with sign.
    (0..w * h)
        .map(|k| {
            let m = dec.mag[k];
            if m == 0 {
                return 0;
            }
            let p = dec.known_plane[k];
            let half = if p == 0 { 0 } else { 1i64 << (p - 1) };
            let v = i64::from(m) + half;
            let (x, y) = (k % w, k / w);
            if dec.grid.get(dec.grid.idx(x, y)) & NEG != 0 {
                -(v as i32)
            } else {
                v as i32
            }
        })
        .collect()
}

fn sig_prop_pass(dec: &mut BlockDecoder, mq: &mut Source, plane: u8) {
    let (w, h) = (dec.grid.w, dec.grid.h);
    let mut y0 = 0;
    while y0 < h {
        let ymax = (y0 + STRIPE_HEIGHT).min(h);
        for x in 0..w {
            for y in y0..ymax {
                let i = dec.grid.idx(x, y);
                let f = dec.grid.get(i);
                if f & SIG == 0 && dec.grid.any_sig_neighbor(i, dec.skip_south(y)) {
                    dec.decode_significance(mq, x, y, plane);
                    dec.grid.set(i, VISITED);
                }
            }
        }
        y0 = ymax;
    }
}

fn mag_ref_pass(dec: &mut BlockDecoder, mq: &mut Source, plane: u8) {
    let (w, h) = (dec.grid.w, dec.grid.h);
    let mut y0 = 0;
    while y0 < h {
        let ymax = (y0 + STRIPE_HEIGHT).min(h);
        for x in 0..w {
            for y in y0..ymax {
                let i = dec.grid.idx(x, y);
                let f = dec.grid.get(i);
                if f & SIG != 0 && f & NEWSIG == 0 {
                    let first = f & REFINED == 0;
                    let mr = mr_context(first, dec.grid.any_sig_neighbor(i, dec.skip_south(y)));
                    let bit = mq.decision(&mut dec.ctx[mr]);
                    dec.grid.set(i, REFINED);
                    let k = y * w + x;
                    dec.mag[k] |= u32::from(bit) << plane;
                    dec.known_plane[k] = plane;
                }
            }
        }
        y0 = ymax;
    }
}

fn cleanup_pass(dec: &mut BlockDecoder, mq: &mut Source, plane: u8) {
    let (w, h) = (dec.grid.w, dec.grid.h);
    let mut y0 = 0;
    while y0 < h {
        let ymax = (y0 + STRIPE_HEIGHT).min(h);
        for x in 0..w {
            let full_stripe = ymax - y0 == STRIPE_HEIGHT;
            let rl_applicable = full_stripe
                && (y0..ymax).all(|y| {
                    let i = dec.grid.idx(x, y);
                    dec.grid.get(i) & (SIG | VISITED) == 0
                        && !dec.grid.any_sig_neighbor(i, dec.skip_south(y))
                });
            let mut y = y0;
            if rl_applicable {
                if mq.decision(&mut dec.ctx[CTX_RL]) == 0 {
                    continue; // all four stay zero
                }
                let hi = mq.decision(&mut dec.ctx[CTX_UNI]);
                let lo = mq.decision(&mut dec.ctx[CTX_UNI]);
                let r = usize::from((hi << 1) | lo);
                let ys = y0 + r;
                dec.decode_sign_and_mark(mq, x, ys, plane);
                y = ys + 1;
            }
            for yy in y..ymax {
                let i = dec.grid.idx(x, yy);
                let f = dec.grid.get(i);
                if f & (SIG | VISITED) == 0 {
                    dec.decode_significance(mq, x, yy, plane);
                }
            }
        }
        y0 = ymax;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::encode_block;

    fn roundtrip_exact(coeffs: &[i32], w: usize, h: usize, band: BandCtx) {
        let blk = encode_block(coeffs, w, h, band);
        let segments: Vec<&[u8]> = (0..blk.passes.len()).map(|p| blk.segment(p)).collect();
        let got = decode_block(w, h, band, blk.msb_planes, &segments);
        assert_eq!(got, coeffs, "{w}x{h} {band:?}");
    }

    #[test]
    fn all_zero_roundtrip() {
        roundtrip_exact(&[0; 35], 7, 5, BandCtx::LlLh);
    }

    #[test]
    fn sparse_roundtrip() {
        let mut c = vec![0i32; 64];
        c[0] = 1;
        c[63] = -1;
        c[20] = 100;
        c[21] = -100;
        roundtrip_exact(&c, 8, 8, BandCtx::Hh);
    }

    #[test]
    fn dense_roundtrip_all_bands() {
        let coeffs: Vec<i32> = (0..256)
            .map(|i| {
                let v = ((i * 37 + 11) % 127) - 63;
                if i % 13 == 0 {
                    0
                } else {
                    v
                }
            })
            .collect();
        for band in [BandCtx::LlLh, BandCtx::Hl, BandCtx::Hh] {
            roundtrip_exact(&coeffs, 16, 16, band);
        }
    }

    #[test]
    fn non_multiple_of_stripe_heights() {
        for h in [1usize, 2, 3, 5, 6, 7, 9] {
            let w = 5;
            let coeffs: Vec<i32> = (0..w * h).map(|i| (i as i32 % 9) - 4).collect();
            roundtrip_exact(&coeffs, w, h, BandCtx::LlLh);
        }
    }

    #[test]
    fn wide_magnitudes_roundtrip() {
        let coeffs: Vec<i32> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    1 << (i % 20)
                } else {
                    -(1 << (i % 18))
                }
            })
            .collect();
        roundtrip_exact(&coeffs, 8, 8, BandCtx::Hl);
    }

    #[test]
    fn truncated_prefixes_decode_with_decreasing_error() {
        let coeffs: Vec<i32> = (0..256)
            .map(|i| (((i * 29) % 255) - 127) / (1 + (i % 3)))
            .collect();
        let blk = encode_block(&coeffs, 16, 16, BandCtx::LlLh);
        let all: Vec<&[u8]> = (0..blk.passes.len()).map(|p| blk.segment(p)).collect();
        let mut prev_err = f64::INFINITY;
        for n in 0..=blk.passes.len() {
            let got = decode_block(16, 16, BandCtx::LlLh, blk.msb_planes, &all[..n]);
            let err: f64 = got
                .iter()
                .zip(&coeffs)
                .map(|(a, b)| (f64::from(*a) - f64::from(*b)).powi(2))
                .sum();
            // Error is non-increasing at pass granularity up to rounding in
            // the midpoint model; allow tiny slack.
            assert!(err <= prev_err + 1e-9, "pass {n}: {err} > {prev_err}");
            // And the encoder's distortion bookkeeping must match exactly.
            if n > 0 || blk.passes.is_empty() {
                let predicted = blk.distortion_after(n);
                assert!(
                    (predicted - err).abs() < 1e-6,
                    "pass {n}: predicted {predicted} vs actual {err}"
                );
            }
            prev_err = err;
        }
        assert_eq!(
            decode_block(16, 16, BandCtx::LlLh, blk.msb_planes, &all),
            coeffs
        );
    }

    #[test]
    fn zero_plane_block_decodes_to_zeros() {
        let got = decode_block(4, 4, BandCtx::Hh, 0, &[]);
        assert_eq!(got, vec![0; 16]);
    }

    #[test]
    #[should_panic(expected = "exceeds plane structure")]
    fn too_many_segments_panics() {
        let seg: &[u8] = &[0u8];
        let _ = decode_block(2, 2, BandCtx::LlLh, 1, &[seg, seg]);
    }

    #[test]
    fn single_row_and_column_blocks() {
        let coeffs: Vec<i32> = (0..17).map(|i| (i - 8) * 5).collect();
        roundtrip_exact(&coeffs, 17, 1, BandCtx::LlLh);
        roundtrip_exact(&coeffs, 1, 17, BandCtx::Hh);
    }

    #[test]
    fn checkerboard_block_roundtrip() {
        let coeffs: Vec<i32> = (0..144)
            .map(|i| {
                let (x, y) = (i % 12, i / 12);
                if (x + y) % 2 == 0 {
                    37
                } else {
                    -37
                }
            })
            .collect();
        roundtrip_exact(&coeffs, 12, 12, BandCtx::Hh);
    }
}
