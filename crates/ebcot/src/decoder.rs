//! Tier-1 block decoder (exact mirror of the encoder's pass structure).
//!
//! The decoder sits on the untrusted-input boundary (DESIGN.md §9):
//! inconsistent block parameters are reported through [`DecodeError`]
//! rather than panics, a segment shortfall simply truncates the decode
//! (every pass boundary is a valid truncation point), and the MQ/raw
//! sources below never read out of bounds on any input.

#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

use crate::context::{
    initial_states, mr_context, sc_context, zc_context, BandCtx, CTX_RL, CTX_UNI, NUM_CTX,
};
use crate::encoder::{in_bypass_region, Tier1Options};
use crate::state::{FlagGrid, NEG, NEWSIG, REFINED, SIG, VISITED};
use crate::{MAX_PLANES, STRIPE_HEIGHT};
use pj2k_mq::{CtxState, MqDecoder, RawDecoder};

/// Error raised when a code-block's parameters are structurally
/// inconsistent. Segment *content* can never error: corrupt entropy bytes
/// decode to wrong coefficients, not to panics or reads out of bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Zero-area code-block.
    EmptyBlock,
    /// A block with zero magnitude planes cannot carry coding passes.
    ZeroPlanePasses {
        /// Number of pass segments supplied.
        passes: usize,
    },
    /// More magnitude bit-planes than the coder supports.
    TooManyPlanes {
        /// Requested plane count.
        planes: u8,
        /// The coder's limit ([`MAX_PLANES`]).
        max: u8,
    },
    /// More pass segments than the plane structure admits.
    TooManyPasses {
        /// Number of pass segments supplied.
        passes: usize,
        /// Maximum passes for the block's plane count.
        max: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            DecodeError::EmptyBlock => write!(f, "empty code-block"),
            DecodeError::ZeroPlanePasses { passes } => {
                write!(f, "zero-plane block cannot carry {passes} passes")
            }
            DecodeError::TooManyPlanes { planes, max } => {
                write!(f, "{planes} magnitude planes exceeds the coder limit {max}")
            }
            DecodeError::TooManyPasses { passes, max } => {
                write!(f, "{passes} passes exceeds plane structure ({max})")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// The per-pass entropy source: MQ codeword or raw segment.
enum Source<'a> {
    Mq(MqDecoder<'a>),
    Raw(RawDecoder<'a>),
}

impl Source<'_> {
    #[inline]
    fn decision(&mut self, ctx: &mut CtxState) -> u8 {
        match self {
            Source::Mq(m) => m.decode(ctx),
            Source::Raw(r) => r.get(),
        }
    }

    /// Sign decoding: MQ uses the context/XOR scheme, raw reads the bit.
    #[inline]
    fn sign(&mut self, ctx: &mut CtxState, xor: u8) -> u8 {
        match self {
            Source::Mq(m) => m.decode(ctx) ^ xor,
            Source::Raw(r) => r.get(),
        }
    }
}

/// Reusable decode-side scratch arena: the flag grid, magnitude
/// accumulator and known-plane map survive across blocks so a warm
/// worker decodes with zero steady-state allocations (the decode mirror
/// of the encoder's `BlockCoder` arena; the counting-allocator oracle in
/// `crates/bench` pins the steady state at zero).
#[derive(Default)]
pub struct BlockDecoderScratch {
    grid: FlagGrid,
    /// Decoded magnitude bits so far.
    mag: Vec<u32>,
    /// Lowest plane whose bit is known per coefficient (for midpoint
    /// reconstruction of truncated streams).
    known_plane: Vec<u8>,
}

impl BlockDecoderScratch {
    /// Empty scratch; buffers grow to the largest block seen and stay.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Decode a code-block into `out` (cleared first), reusing this
    /// scratch's buffers. Semantics are exactly [`decode_block_with`];
    /// `segments` is generic over anything byte-slice-shaped so callers
    /// can pass `&[Vec<u8>]` without building a per-block `Vec<&[u8]>`.
    // The arguments are the block's wire-format identity plus the two
    // caller-owned buffers; bundling them would only add a struct whose
    // job is to be destructured here (same shape as the encode side).
    #[allow(clippy::too_many_arguments)]
    pub fn decode_into<S: AsRef<[u8]>>(
        &mut self,
        w: usize,
        h: usize,
        band: BandCtx,
        msb_planes: u8,
        segments: &[S],
        opts: Tier1Options,
        out: &mut Vec<i32>,
    ) -> Result<(), DecodeError> {
        decode_block_into(self, w, h, band, msb_planes, segments, opts, out)
    }
}

/// Per-block decoder view: borrows the scratch buffers (already sized to
/// `w * h`) plus the per-block context states and options.
struct BlockDecoder<'a> {
    grid: &'a mut FlagGrid,
    band: BandCtx,
    ctx: [CtxState; NUM_CTX],
    mag: &'a mut [u32],
    known_plane: &'a mut [u8],
    opts: Tier1Options,
}

impl BlockDecoder<'_> {
    // AUDIT(fn): `y < h` in every caller, so `y + 1` cannot overflow.
    #[allow(clippy::arithmetic_side_effects)]
    #[inline]
    fn skip_south(&self, y: usize) -> bool {
        self.opts.stripe_causal && (y + 1).is_multiple_of(STRIPE_HEIGHT)
    }

    // AUDIT(fn): context indices come from the context tables, whose
    // contract is `< NUM_CTX`; input bits select branches, never indices.
    #[allow(clippy::indexing_slicing)]
    fn decode_significance(&mut self, mq: &mut Source, x: usize, y: usize, plane: u8) {
        let i = self.grid.idx(x, y);
        let ss = self.skip_south(y);
        let (h, v, d) = (
            self.grid.h_count(i),
            self.grid.v_count(i, ss),
            self.grid.d_count(i, ss),
        );
        let zc = zc_context(self.band, h, v, d);
        let bit = mq.decision(&mut self.ctx[zc]);
        if bit == 1 {
            self.decode_sign_and_mark(mq, x, y, plane);
        }
    }

    // AUDIT(fn): `(x, y)` comes from the scan over the validated `w x h`
    // grid, so `k < w * h == mag.len()`; `plane < msb_planes <= 31` keeps
    // the shift in range. Untrusted bits only pick the sign branch.
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    fn decode_sign_and_mark(&mut self, mq: &mut Source, x: usize, y: usize, plane: u8) {
        let i = self.grid.idx(x, y);
        let ss = self.skip_south(y);
        let (sc, xor) = sc_context(self.grid.hc(i), self.grid.vc(i, ss));
        let neg = mq.sign(&mut self.ctx[sc], xor);
        self.grid
            .set(i, SIG | NEWSIG | if neg == 1 { NEG } else { 0 });
        let k = y * self.grid.w + x;
        self.mag[k] = 1u32 << plane;
        self.known_plane[k] = plane;
    }
}

/// Decode a code-block with default coding style (see
/// [`decode_block_with`]).
pub fn decode_block(
    w: usize,
    h: usize,
    band: BandCtx,
    msb_planes: u8,
    segments: &[&[u8]],
) -> Result<Vec<i32>, DecodeError> {
    decode_block_with(w, h, band, msb_planes, segments, Tier1Options::default())
}

/// Decode a code-block from its pass segments under the given coding
/// style (must match the encoder's).
///
/// `segments` holds the first `n` coding passes' terminated MQ segments in
/// coding order (any prefix of the encoder's passes). Returns the
/// midpoint-reconstructed signed coefficients, row-major, or a
/// [`DecodeError`] when the block parameters are inconsistent.
// AUDIT(hot): cold convenience wrapper — builds fresh scratch per
// call; the decode hot paths go through a warm [`BlockDecoderScratch`]
// and `decode_into` instead.
pub fn decode_block_with(
    w: usize,
    h: usize,
    band: BandCtx,
    msb_planes: u8,
    segments: &[&[u8]],
    opts: Tier1Options,
) -> Result<Vec<i32>, DecodeError> {
    let mut scratch = BlockDecoderScratch::new();
    let mut out = Vec::new();
    scratch.decode_into(w, h, band, msb_planes, segments, opts, &mut out)?;
    Ok(out)
}

/// Shared body for [`decode_block_with`] and
/// [`BlockDecoderScratch::decode_into`].
// AUDIT(fn): arithmetic and indexing run over the validated geometry —
// `w * h > 0` (non-empty check above), `msb_planes <= 31` (bounds the
// shifts and `max_passes`), and `k` scans `0..w * h` over buffers resized
// to exactly that length. Untrusted segment bytes never influence an
// index. The resize/extend sites are AUDIT(hot)-amortized: scratch
// buffers keep their high-water capacity across blocks, so a warm worker
// performs zero allocations here (pinned by the bench alloc oracle).
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
#[allow(clippy::too_many_arguments)]
fn decode_block_into<S: AsRef<[u8]>>(
    scratch: &mut BlockDecoderScratch,
    w: usize,
    h: usize,
    band: BandCtx,
    msb_planes: u8,
    segments: &[S],
    opts: Tier1Options,
    out: &mut Vec<i32>,
) -> Result<(), DecodeError> {
    if w == 0 || h == 0 {
        return Err(DecodeError::EmptyBlock);
    }
    if msb_planes == 0 {
        if !segments.is_empty() {
            return Err(DecodeError::ZeroPlanePasses {
                passes: segments.len(),
            });
        }
        out.clear();
        // AUDIT(hot): amortized — reuses the caller's high-water capacity.
        out.resize(w * h, 0);
        return Ok(());
    }
    if msb_planes > MAX_PLANES {
        return Err(DecodeError::TooManyPlanes {
            planes: msb_planes,
            max: MAX_PLANES,
        });
    }
    let max_passes = 1 + 3 * (usize::from(msb_planes) - 1);
    if segments.len() > max_passes {
        return Err(DecodeError::TooManyPasses {
            passes: segments.len(),
            max: max_passes,
        });
    }
    scratch.grid.reset(w, h);
    scratch.mag.clear();
    // AUDIT(hot): amortized — scratch keeps its high-water capacity.
    scratch.mag.resize(w * h, 0);
    scratch.known_plane.clear();
    // AUDIT(hot): amortized — scratch keeps its high-water capacity.
    scratch.known_plane.resize(w * h, 0);
    let mut dec = BlockDecoder {
        grid: &mut scratch.grid,
        band,
        ctx: initial_states(),
        mag: scratch.mag.as_mut_slice(),
        known_plane: scratch.known_plane.as_mut_slice(),
        opts,
    };
    let mut seg_iter = segments.iter();

    'outer: for plane in (0..msb_planes).rev() {
        dec.grid.clear_plane_flags();
        let first_plane = plane + 1 == msb_planes;
        let bypassed = opts.bypass && in_bypass_region(plane, msb_planes);
        if !first_plane {
            for kind in 0..2 {
                // A short prefix is a legal truncation point: stop cleanly.
                let Some(seg) = seg_iter.next() else {
                    break 'outer;
                };
                let seg = seg.as_ref();
                let mut mq = if bypassed {
                    Source::Raw(RawDecoder::new(seg))
                } else {
                    Source::Mq(MqDecoder::new(seg))
                };
                if kind == 0 {
                    sig_prop_pass(&mut dec, &mut mq, plane);
                } else {
                    mag_ref_pass(&mut dec, &mut mq, plane);
                }
                if opts.reset_contexts {
                    dec.ctx = initial_states();
                }
            }
        }
        let Some(seg) = seg_iter.next() else {
            break;
        };
        let mut mq = Source::Mq(MqDecoder::new(seg.as_ref()));
        cleanup_pass(&mut dec, &mut mq, plane);
        if opts.reset_contexts {
            dec.ctx = initial_states();
        }
    }

    // Midpoint reconstruction with sign.
    out.clear();
    // AUDIT(hot): amortized — extend into the caller's recycled buffer.
    out.extend((0..w * h).map(|k| {
        let m = dec.mag[k];
        if m == 0 {
            return 0;
        }
        let p = dec.known_plane[k];
        let half = if p == 0 { 0 } else { 1i64 << (p - 1) };
        let v = i64::from(m) + half;
        let (x, y) = (k % w, k / w);
        if dec.grid.get(dec.grid.idx(x, y)) & NEG != 0 {
            -(v as i32)
        } else {
            v as i32
        }
    }));
    Ok(())
}

// AUDIT(fn): stripe geometry over the validated grid (`ymax <= h`); all
// indexing happens through the FlagGrid accessors on in-range (x, y).
#[allow(clippy::arithmetic_side_effects)]
fn sig_prop_pass(dec: &mut BlockDecoder<'_>, mq: &mut Source, plane: u8) {
    let (w, h) = (dec.grid.w, dec.grid.h);
    let mut y0 = 0;
    while y0 < h {
        let ymax = (y0 + STRIPE_HEIGHT).min(h);
        for x in 0..w {
            for y in y0..ymax {
                let i = dec.grid.idx(x, y);
                let f = dec.grid.get(i);
                if f & SIG == 0 && dec.grid.any_sig_neighbor(i, dec.skip_south(y)) {
                    dec.decode_significance(mq, x, y, plane);
                    dec.grid.set(i, VISITED);
                }
            }
        }
        y0 = ymax;
    }
}

// AUDIT(fn): stripe geometry over the validated grid; `k = y * w + x` with
// `x < w`, `y < h` stays below `mag.len() == w * h`, the context index is
// `< NUM_CTX` by the table contract, and `plane <= 30` bounds the shift.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
fn mag_ref_pass(dec: &mut BlockDecoder<'_>, mq: &mut Source, plane: u8) {
    let (w, h) = (dec.grid.w, dec.grid.h);
    let mut y0 = 0;
    while y0 < h {
        let ymax = (y0 + STRIPE_HEIGHT).min(h);
        for x in 0..w {
            for y in y0..ymax {
                let i = dec.grid.idx(x, y);
                let f = dec.grid.get(i);
                if f & SIG != 0 && f & NEWSIG == 0 {
                    let first = f & REFINED == 0;
                    let mr = mr_context(first, dec.grid.any_sig_neighbor(i, dec.skip_south(y)));
                    let bit = mq.decision(&mut dec.ctx[mr]);
                    dec.grid.set(i, REFINED);
                    let k = y * w + x;
                    dec.mag[k] |= u32::from(bit) << plane;
                    dec.known_plane[k] = plane;
                }
            }
        }
        y0 = ymax;
    }
}

// AUDIT(fn): the run-length row offset is the only input-derived position
// and it is two bits (`r <= 3`), applied only when the stripe is full
// (`ymax - y0 == STRIPE_HEIGHT`), so `y0 + r < ymax <= h`; everything
// else is validated-grid geometry and `< NUM_CTX` context indices.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
fn cleanup_pass(dec: &mut BlockDecoder<'_>, mq: &mut Source, plane: u8) {
    let (w, h) = (dec.grid.w, dec.grid.h);
    let mut y0 = 0;
    while y0 < h {
        let ymax = (y0 + STRIPE_HEIGHT).min(h);
        for x in 0..w {
            let full_stripe = ymax - y0 == STRIPE_HEIGHT;
            let rl_applicable = full_stripe
                && (y0..ymax).all(|y| {
                    let i = dec.grid.idx(x, y);
                    dec.grid.get(i) & (SIG | VISITED) == 0
                        && !dec.grid.any_sig_neighbor(i, dec.skip_south(y))
                });
            let mut y = y0;
            if rl_applicable {
                if mq.decision(&mut dec.ctx[CTX_RL]) == 0 {
                    continue; // all four stay zero
                }
                let hi = mq.decision(&mut dec.ctx[CTX_UNI]);
                let lo = mq.decision(&mut dec.ctx[CTX_UNI]);
                let r = usize::from((hi << 1) | lo);
                let ys = y0 + r;
                dec.decode_sign_and_mark(mq, x, ys, plane);
                y = ys + 1;
            }
            for yy in y..ymax {
                let i = dec.grid.idx(x, yy);
                let f = dec.grid.get(i);
                if f & (SIG | VISITED) == 0 {
                    dec.decode_significance(mq, x, yy, plane);
                }
            }
        }
        y0 = ymax;
    }
}

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::encoder::encode_block;

    fn roundtrip_exact(coeffs: &[i32], w: usize, h: usize, band: BandCtx) {
        let blk = encode_block(coeffs, w, h, band);
        let segments: Vec<&[u8]> = (0..blk.passes.len()).map(|p| blk.segment(p)).collect();
        let got = decode_block(w, h, band, blk.msb_planes, &segments).unwrap();
        assert_eq!(got, coeffs, "{w}x{h} {band:?}");
    }

    #[test]
    fn all_zero_roundtrip() {
        roundtrip_exact(&[0; 35], 7, 5, BandCtx::LlLh);
    }

    #[test]
    fn sparse_roundtrip() {
        let mut c = vec![0i32; 64];
        c[0] = 1;
        c[63] = -1;
        c[20] = 100;
        c[21] = -100;
        roundtrip_exact(&c, 8, 8, BandCtx::Hh);
    }

    #[test]
    fn dense_roundtrip_all_bands() {
        let coeffs: Vec<i32> = (0..256)
            .map(|i| {
                let v = ((i * 37 + 11) % 127) - 63;
                if i % 13 == 0 {
                    0
                } else {
                    v
                }
            })
            .collect();
        for band in [BandCtx::LlLh, BandCtx::Hl, BandCtx::Hh] {
            roundtrip_exact(&coeffs, 16, 16, band);
        }
    }

    #[test]
    fn non_multiple_of_stripe_heights() {
        for h in [1usize, 2, 3, 5, 6, 7, 9] {
            let w = 5;
            let coeffs: Vec<i32> = (0..w * h).map(|i| (i as i32 % 9) - 4).collect();
            roundtrip_exact(&coeffs, w, h, BandCtx::LlLh);
        }
    }

    #[test]
    fn wide_magnitudes_roundtrip() {
        let coeffs: Vec<i32> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    1 << (i % 20)
                } else {
                    -(1 << (i % 18))
                }
            })
            .collect();
        roundtrip_exact(&coeffs, 8, 8, BandCtx::Hl);
    }

    #[test]
    fn truncated_prefixes_decode_with_decreasing_error() {
        let coeffs: Vec<i32> = (0..256)
            .map(|i| (((i * 29) % 255) - 127) / (1 + (i % 3)))
            .collect();
        let blk = encode_block(&coeffs, 16, 16, BandCtx::LlLh);
        let all: Vec<&[u8]> = (0..blk.passes.len()).map(|p| blk.segment(p)).collect();
        let mut prev_err = f64::INFINITY;
        for n in 0..=blk.passes.len() {
            let got = decode_block(16, 16, BandCtx::LlLh, blk.msb_planes, &all[..n]).unwrap();
            let err: f64 = got
                .iter()
                .zip(&coeffs)
                .map(|(a, b)| (f64::from(*a) - f64::from(*b)).powi(2))
                .sum();
            // Error is non-increasing at pass granularity up to rounding in
            // the midpoint model; allow tiny slack.
            assert!(err <= prev_err + 1e-9, "pass {n}: {err} > {prev_err}");
            // And the encoder's distortion bookkeeping must match exactly.
            if n > 0 || blk.passes.is_empty() {
                let predicted = blk.distortion_after(n);
                assert!(
                    (predicted - err).abs() < 1e-6,
                    "pass {n}: predicted {predicted} vs actual {err}"
                );
            }
            prev_err = err;
        }
        assert_eq!(
            decode_block(16, 16, BandCtx::LlLh, blk.msb_planes, &all).unwrap(),
            coeffs
        );
    }

    #[test]
    fn zero_plane_block_decodes_to_zeros() {
        let got = decode_block(4, 4, BandCtx::Hh, 0, &[]).unwrap();
        assert_eq!(got, vec![0; 16]);
    }

    #[test]
    fn inconsistent_parameters_are_errors_not_panics() {
        let seg: &[u8] = &[0u8];
        assert_eq!(
            decode_block(2, 2, BandCtx::LlLh, 1, &[seg, seg]).unwrap_err(),
            DecodeError::TooManyPasses { passes: 2, max: 1 }
        );
        assert_eq!(
            decode_block(0, 2, BandCtx::LlLh, 1, &[]).unwrap_err(),
            DecodeError::EmptyBlock
        );
        assert_eq!(
            decode_block(2, 2, BandCtx::LlLh, 0, &[seg]).unwrap_err(),
            DecodeError::ZeroPlanePasses { passes: 1 }
        );
        assert_eq!(
            decode_block(2, 2, BandCtx::LlLh, MAX_PLANES + 1, &[seg]).unwrap_err(),
            DecodeError::TooManyPlanes {
                planes: MAX_PLANES + 1,
                max: MAX_PLANES
            }
        );
    }

    #[test]
    fn garbage_segments_decode_without_panicking() {
        // Corrupt entropy bytes must yield *some* coefficients, never a
        // panic or out-of-bounds access.
        let garbage: Vec<Vec<u8>> = (0..7)
            .map(|p| (0..9).map(|i| ((i * 41 + p * 13) % 251) as u8).collect())
            .collect();
        let segs: Vec<&[u8]> = garbage.iter().map(Vec::as_slice).collect();
        for planes in 1..=8u8 {
            let max = 1 + 3 * (usize::from(planes) - 1);
            let n = segs.len().min(max);
            let got = decode_block(8, 4, BandCtx::Hl, planes, &segs[..n]).unwrap();
            assert_eq!(got.len(), 32);
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_block_shapes() {
        // One warm scratch decoding blocks of varying geometry must match
        // the one-shot path exactly (the pipelined decoder reuses one
        // scratch per worker across every block it claims).
        let mut scratch = BlockDecoderScratch::new();
        let mut out = Vec::new();
        for (w, h) in [(16usize, 16usize), (3, 9), (32, 4), (1, 1), (8, 8)] {
            let coeffs: Vec<i32> = (0..w * h).map(|i| (i as i32 % 23) - 11).collect();
            for band in [BandCtx::LlLh, BandCtx::Hl, BandCtx::Hh] {
                let blk = encode_block(&coeffs, w, h, band);
                // Owned segments, passed without a per-block ref vector.
                let owned: Vec<Vec<u8>> = (0..blk.passes.len())
                    .map(|p| blk.segment(p).to_vec())
                    .collect();
                scratch
                    .decode_into(
                        w,
                        h,
                        band,
                        blk.msb_planes,
                        &owned,
                        Tier1Options::default(),
                        &mut out,
                    )
                    .unwrap();
                let refs: Vec<&[u8]> = owned.iter().map(Vec::as_slice).collect();
                assert_eq!(
                    out,
                    decode_block(w, h, band, blk.msb_planes, &refs).unwrap(),
                    "{w}x{h} {band:?}"
                );
                assert_eq!(out, coeffs);
            }
        }
        // Structural errors leave the scratch reusable.
        let seg: &[u8] = &[0u8];
        assert_eq!(
            scratch
                .decode_into(
                    2,
                    2,
                    BandCtx::LlLh,
                    1,
                    &[seg, seg],
                    Tier1Options::default(),
                    &mut out
                )
                .unwrap_err(),
            DecodeError::TooManyPasses { passes: 2, max: 1 }
        );
        scratch
            .decode_into(
                4,
                4,
                BandCtx::Hh,
                0,
                &[] as &[&[u8]],
                Tier1Options::default(),
                &mut out,
            )
            .unwrap();
        assert_eq!(out, vec![0; 16]);
    }

    #[test]
    fn single_row_and_column_blocks() {
        let coeffs: Vec<i32> = (0..17).map(|i| (i - 8) * 5).collect();
        roundtrip_exact(&coeffs, 17, 1, BandCtx::LlLh);
        roundtrip_exact(&coeffs, 1, 17, BandCtx::Hh);
    }

    #[test]
    fn checkerboard_block_roundtrip() {
        let coeffs: Vec<i32> = (0..144)
            .map(|i| {
                let (x, y) = (i % 12, i / 12);
                if (x + y) % 2 == 0 {
                    37
                } else {
                    -37
                }
            })
            .collect();
        roundtrip_exact(&coeffs, 12, 12, BandCtx::Hh);
    }
}
