//! Tier-1 context modeling (ISO/IEC 15444-1 Annex D, Tables D.1–D.4).
//!
//! Nineteen MQ contexts: 9 zero-coding (0–8, orientation-dependent),
//! 5 sign-coding (9–13), 3 magnitude-refinement (14–16), one run-length
//! (17) and one uniform (18).

use pj2k_mq::CtxState;

/// Zero-coding contexts occupy indices `0..=8`.
pub const CTX_ZC_BASE: usize = 0;
/// Sign-coding contexts occupy indices `9..=13`.
pub const CTX_SC_BASE: usize = 9;
/// Magnitude-refinement contexts occupy indices `14..=16`.
pub const CTX_MR_BASE: usize = 14;
/// Run-length context index.
pub const CTX_RL: usize = 17;
/// Uniform (near-raw) context index.
pub const CTX_UNI: usize = 18;
/// Total context count.
pub const NUM_CTX: usize = 19;

/// Subband orientation class for zero-coding context selection.
///
/// `LL` and `LH` (vertically high-pass) blocks share a table; `HL`
/// (horizontally high-pass) swaps the roles of horizontal and vertical
/// neighbors; `HH` keys primarily on the diagonal count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BandCtx {
    /// LL or LH subband.
    LlLh,
    /// HL subband.
    Hl,
    /// HH subband.
    Hh,
}

/// Fresh context bank with the standard initial states:
/// ZC context 0 starts at Qe row 4, run-length at row 3, uniform at row 46,
/// everything else at row 0.
pub fn initial_states() -> [CtxState; NUM_CTX] {
    let mut ctx = [CtxState::default(); NUM_CTX];
    ctx[CTX_ZC_BASE] = CtxState::new(4);
    ctx[CTX_RL] = CtxState::new(3);
    ctx[CTX_UNI] = CtxState::new(46);
    ctx
}

/// Zero-coding context (0..=8) from neighbor significance counts:
/// `h`/`v` in `0..=2` (horizontal/vertical neighbors), `d` in `0..=4`
/// (diagonals).
#[inline]
pub fn zc_context(band: BandCtx, h: u32, v: u32, d: u32) -> usize {
    debug_assert!(h <= 2 && v <= 2 && d <= 4);
    let (h, v) = match band {
        BandCtx::LlLh => (h, v),
        BandCtx::Hl => (v, h), // transpose
        BandCtx::Hh => {
            // HH keys on d first; fold (h + v) into the "h" slot below.
            return match d {
                d if d >= 3 => 8,
                2 => {
                    if h + v >= 1 {
                        7
                    } else {
                        6
                    }
                }
                1 => match h + v {
                    hv if hv >= 2 => 5,
                    1 => 4,
                    _ => 3,
                },
                _ => match h + v {
                    hv if hv >= 2 => 2,
                    1 => 1,
                    _ => 0,
                },
            };
        }
    };
    match h {
        2 => 8,
        1 => {
            if v >= 1 {
                7
            } else if d >= 1 {
                6
            } else {
                5
            }
        }
        _ => match v {
            2 => 4,
            1 => 3,
            _ => match d {
                d if d >= 2 => 2,
                1 => 1,
                _ => 0,
            },
        },
    }
}

/// Sign-coding context and XOR bit from the clamped horizontal and vertical
/// sign contributions `hc`, `vc` in `-1..=1` (Tables D.3/D.4).
///
/// The coded decision is `sign_bit XOR xor_bit` where `sign_bit` is 1 for
/// negative.
#[inline]
pub fn sc_context(hc: i32, vc: i32) -> (usize, u8) {
    debug_assert!((-1..=1).contains(&hc) && (-1..=1).contains(&vc));
    match (hc, vc) {
        (1, 1) => (13, 0),
        (1, 0) => (12, 0),
        (1, -1) => (11, 0),
        (0, 1) => (10, 0),
        (0, 0) => (9, 0),
        (0, -1) => (10, 1),
        (-1, 1) => (11, 1),
        (-1, 0) => (12, 1),
        (-1, -1) => (13, 1),
        // AUDIT(hot): unreachable — hc/vc are clamped to -1..=1 above.
        _ => unreachable!("clamped contributions"),
    }
}

/// Magnitude-refinement context: `first` refinement of a coefficient keys on
/// whether any of the 8 neighbors is significant; later refinements use
/// context 16.
#[inline]
pub fn mr_context(first_refinement: bool, any_sig_neighbor: bool) -> usize {
    if !first_refinement {
        16
    } else if any_sig_neighbor {
        15
    } else {
        14
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zc_ll_table_spot_checks() {
        assert_eq!(zc_context(BandCtx::LlLh, 2, 0, 0), 8);
        assert_eq!(zc_context(BandCtx::LlLh, 2, 2, 4), 8);
        assert_eq!(zc_context(BandCtx::LlLh, 1, 1, 0), 7);
        assert_eq!(zc_context(BandCtx::LlLh, 1, 0, 3), 6);
        assert_eq!(zc_context(BandCtx::LlLh, 1, 0, 0), 5);
        assert_eq!(zc_context(BandCtx::LlLh, 0, 2, 0), 4);
        assert_eq!(zc_context(BandCtx::LlLh, 0, 1, 4), 3);
        assert_eq!(zc_context(BandCtx::LlLh, 0, 0, 2), 2);
        assert_eq!(zc_context(BandCtx::LlLh, 0, 0, 1), 1);
        assert_eq!(zc_context(BandCtx::LlLh, 0, 0, 0), 0);
    }

    #[test]
    fn zc_hl_is_transposed_ll() {
        for h in 0..=2 {
            for v in 0..=2 {
                for d in 0..=4 {
                    assert_eq!(
                        zc_context(BandCtx::Hl, h, v, d),
                        zc_context(BandCtx::LlLh, v, h, d),
                        "h={h} v={v} d={d}"
                    );
                }
            }
        }
    }

    #[test]
    fn zc_hh_table_spot_checks() {
        assert_eq!(zc_context(BandCtx::Hh, 0, 0, 4), 8);
        assert_eq!(zc_context(BandCtx::Hh, 0, 0, 3), 8);
        assert_eq!(zc_context(BandCtx::Hh, 1, 0, 2), 7);
        assert_eq!(zc_context(BandCtx::Hh, 0, 0, 2), 6);
        assert_eq!(zc_context(BandCtx::Hh, 2, 1, 1), 5);
        assert_eq!(zc_context(BandCtx::Hh, 1, 0, 1), 4);
        assert_eq!(zc_context(BandCtx::Hh, 0, 0, 1), 3);
        assert_eq!(zc_context(BandCtx::Hh, 1, 1, 0), 2);
        assert_eq!(zc_context(BandCtx::Hh, 0, 1, 0), 1);
        assert_eq!(zc_context(BandCtx::Hh, 0, 0, 0), 0);
    }

    #[test]
    fn zc_range_is_0_to_8() {
        for band in [BandCtx::LlLh, BandCtx::Hl, BandCtx::Hh] {
            for h in 0..=2 {
                for v in 0..=2 {
                    for d in 0..=4 {
                        let c = zc_context(band, h, v, d);
                        assert!(c <= 8);
                    }
                }
            }
        }
    }

    #[test]
    fn sc_table_is_symmetric_under_negation() {
        // Negating both contributions keeps the context and flips the XOR.
        for hc in -1..=1 {
            for vc in -1..=1 {
                let (c1, x1) = sc_context(hc, vc);
                let (c2, x2) = sc_context(-hc, -vc);
                assert_eq!(c1, c2);
                if (hc, vc) != (0, 0) {
                    assert_ne!(x1, x2, "hc={hc} vc={vc}");
                } else {
                    assert_eq!(x1, x2);
                }
                assert!((9..=13).contains(&c1));
            }
        }
    }

    #[test]
    fn mr_contexts() {
        assert_eq!(mr_context(true, false), 14);
        assert_eq!(mr_context(true, true), 15);
        assert_eq!(mr_context(false, false), 16);
        assert_eq!(mr_context(false, true), 16);
    }

    #[test]
    fn initial_states_match_standard() {
        let ctx = initial_states();
        assert_eq!(ctx[CTX_ZC_BASE].index(), 4);
        assert_eq!(ctx[CTX_RL].index(), 3);
        assert_eq!(ctx[CTX_UNI].index(), 46);
        assert_eq!(ctx[1].index(), 0);
        assert_eq!(ctx[CTX_MR_BASE].index(), 0);
        assert!(ctx.iter().all(|c| c.mps() == 0));
    }
}
