//! Engine-equivalence suite: the bitplane Tier-1 engine must reproduce the
//! reference engine's output byte for byte — same segments, same pass
//! table, same (order-sensitive, hence exactly equal) distortion sums —
//! across every coding-style combination, band class, and block geometry.
//!
//! NOTE: the `proptest! {` block must stay the tail of this file (the
//! offline test harness strips it textually).

use pj2k_ebcot::{BandCtx, BlockCoder, EncodedBlock, Tier1Engine, Tier1Options};

const BANDS: [BandCtx; 3] = [BandCtx::LlLh, BandCtx::Hl, BandCtx::Hh];

fn all_styles() -> Vec<Tier1Options> {
    let mut v = Vec::new();
    for sc in [false, true] {
        for rc in [false, true] {
            for by in [false, true] {
                v.push(Tier1Options {
                    stripe_causal: sc,
                    reset_contexts: rc,
                    bypass: by,
                });
            }
        }
    }
    v
}

/// Deterministic pseudo-random coefficients: LCG magnitudes with a density
/// knob (`keep_mod`: 1 = dense, larger = sparser) and a magnitude cap.
fn synth_block(seed: u64, n: usize, keep_mod: u64, max_mag: i32) -> Vec<i32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..n)
        .map(|_| {
            if keep_mod > 1 && next() % keep_mod != 0 {
                return 0;
            }
            let m = (next() % (max_mag.unsigned_abs() as u64 + 1)) as i32;
            if next() % 2 == 0 {
                m
            } else {
                -m
            }
        })
        .collect()
}

fn assert_identical(a: &EncodedBlock, b: &EncodedBlock, what: &str) {
    assert_eq!(a.msb_planes, b.msb_planes, "{what}: msb_planes");
    assert_eq!(a.data, b.data, "{what}: segment bytes");
    assert_eq!(a.passes.len(), b.passes.len(), "{what}: pass count");
    for (i, (pa, pb)) in a.passes.iter().zip(&b.passes).enumerate() {
        assert_eq!(pa.kind, pb.kind, "{what}: pass {i} kind");
        assert_eq!(pa.plane, pb.plane, "{what}: pass {i} plane");
        assert_eq!(pa.len, pb.len, "{what}: pass {i} len");
        // Both engines accumulate the per-pass distortion in the same
        // coefficient order, so the f64 sums are bit-equal, not merely close.
        assert!(
            pa.delta_distortion == pb.delta_distortion,
            "{what}: pass {i} distortion {} vs {}",
            pa.delta_distortion,
            pb.delta_distortion
        );
    }
    assert!(
        a.initial_distortion == b.initial_distortion,
        "{what}: initial distortion"
    );
}

fn check_block(coeffs: &[i32], w: usize, h: usize, what: &str) {
    let mut reference = BlockCoder::with_engine(Tier1Engine::Reference);
    let mut bitplane = BlockCoder::with_engine(Tier1Engine::Bitplane);
    for band in BANDS {
        for opts in all_styles() {
            let a = reference.encode_with(coeffs, w, h, band, opts);
            let b = bitplane.encode_with(coeffs, w, h, band, opts);
            assert_identical(&a, &b, &format!("{what} {band:?} {opts:?}"));
        }
    }
}

#[test]
fn engines_agree_on_geometry_matrix() {
    // Word-boundary widths (63/64/65 exercise the cross-word stencil and
    // wpr = 2), partial bottom stripes, single row/column blocks.
    let geometries: [(usize, usize); 10] = [
        (1, 1),
        (1, 7),
        (5, 1),
        (4, 4),
        (8, 5),
        (16, 16),
        (63, 9),
        (64, 12),
        (65, 10),
        (128, 6),
    ];
    for (i, &(w, h)) in geometries.iter().enumerate() {
        let coeffs = synth_block(0xA11CE + i as u64, w * h, 3, 200);
        check_block(&coeffs, w, h, &format!("geom {w}x{h}"));
    }
}

#[test]
fn engines_agree_on_density_sweep() {
    // Dense through very sparse: sparse blocks drive the run-batched
    // cleanup and the column-mask skipping hardest.
    for (i, keep) in [1u64, 2, 5, 17, 97].into_iter().enumerate() {
        let coeffs = synth_block(0xD05E + i as u64, 64 * 24, keep, 900);
        check_block(&coeffs, 64, 24, &format!("density 1/{keep}"));
    }
}

#[test]
fn engines_agree_on_deep_planes_and_bypass() {
    // Large magnitudes force many bit-planes, putting most passes in the
    // selective-bypass region when bypass is on (raw SPP/MR segments).
    let coeffs = synth_block(0xBEEF, 32 * 20, 4, 1 << 20);
    check_block(&coeffs, 32, 20, "deep planes");
}

#[test]
fn engines_agree_on_degenerate_blocks() {
    check_block(&vec![0; 8 * 8], 8, 8, "all zero");
    check_block(&[1], 1, 1, "single +1");
    check_block(&[-1], 1, 1, "single -1");
    // Constant stripes: every column is run-length eligible at every plane.
    check_block(&vec![4; 64 * 8], 64, 8, "constant 4");
    check_block(&vec![-3; 17 * 6], 17, 6, "constant -3");
    // Single hot coefficient in each corner of a two-word-wide block.
    for &k in &[0usize, 65, 70 * 8 - 1] {
        let mut coeffs = vec![0i32; 70 * 8];
        coeffs[k] = -777;
        check_block(&coeffs, 70, 8, &format!("hot corner {k}"));
    }
}

#[test]
fn bitplane_encode_into_recycles_without_divergence() {
    // Refilling a dirty EncodedBlock must match a fresh encode exactly.
    let mut coder = BlockCoder::with_engine(Tier1Engine::Bitplane);
    let mut out = EncodedBlock::default();
    for seed in 0..6u64 {
        let (w, h) = (48, 13);
        let coeffs = synth_block(seed, w * h, 2 + seed % 4, 300);
        let opts = Tier1Options {
            bypass: seed % 2 == 0,
            stripe_causal: seed % 3 == 0,
            reset_contexts: false,
        };
        let fresh = coder.encode_with(&coeffs, w, h, BandCtx::Hl, opts);
        coder.encode_into(&coeffs, w, h, BandCtx::Hl, opts, &mut out);
        assert_identical(&fresh, &out, &format!("recycled seed {seed}"));
    }
}

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random blocks, random geometry, every coding style, both engines:
    /// byte-identical codestreams and pass tables.
    #[test]
    fn tier1_engines_bit_identical(
        seed in any::<u64>(),
        w in 1usize..96,
        h in 1usize..24,
        keep in 1u64..24,
        max_mag in 1i32..5000,
        band_i in 0usize..3,
        style_i in 0usize..8,
    ) {
        let coeffs = synth_block(seed, w * h, keep, max_mag);
        let band = BANDS[band_i];
        let opts = all_styles()[style_i];
        let a = BlockCoder::with_engine(Tier1Engine::Reference)
            .encode_with(&coeffs, w, h, band, opts);
        let b = BlockCoder::with_engine(Tier1Engine::Bitplane)
            .encode_with(&coeffs, w, h, band, opts);
        prop_assert_eq!(&a.data, &b.data, "segments differ");
        prop_assert_eq!(a.passes.len(), b.passes.len());
        for (pa, pb) in a.passes.iter().zip(&b.passes) {
            prop_assert_eq!(pa.kind, pb.kind);
            prop_assert_eq!(pa.plane, pb.plane);
            prop_assert_eq!(pa.len, pb.len);
            prop_assert!(pa.delta_distortion == pb.delta_distortion);
        }
    }
}
