//! Tests for the optional Tier-1 coding styles (stripe-causal context
//! formation, per-pass context reset).

use pj2k_ebcot::{decode_block_with, encode_block_with, BandCtx, Tier1Options};
use proptest::prelude::*;

const ALL_OPTS: [Tier1Options; 6] = [
    Tier1Options {
        stripe_causal: false,
        reset_contexts: false,
        bypass: false,
    },
    Tier1Options {
        stripe_causal: true,
        reset_contexts: false,
        bypass: false,
    },
    Tier1Options {
        stripe_causal: false,
        reset_contexts: true,
        bypass: false,
    },
    Tier1Options {
        stripe_causal: true,
        reset_contexts: true,
        bypass: false,
    },
    Tier1Options {
        stripe_causal: false,
        reset_contexts: false,
        bypass: true,
    },
    Tier1Options {
        stripe_causal: true,
        reset_contexts: true,
        bypass: true,
    },
];

fn sample_block(w: usize, h: usize, seed: u64) -> Vec<i32> {
    let mut state = seed | 1;
    (0..w * h)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            if state.is_multiple_of(3) {
                0
            } else {
                ((state >> 40) as i32 % 2000) - 1000
            }
        })
        .collect()
}

#[test]
fn every_style_roundtrips_exactly() {
    let (w, h) = (20, 19);
    let coeffs = sample_block(w, h, 7);
    for opts in ALL_OPTS {
        for band in [BandCtx::LlLh, BandCtx::Hl, BandCtx::Hh] {
            let blk = encode_block_with(&coeffs, w, h, band, opts);
            let segs: Vec<&[u8]> = (0..blk.passes.len()).map(|p| blk.segment(p)).collect();
            let got = decode_block_with(w, h, band, blk.msb_planes, &segs, opts).unwrap();
            assert_eq!(got, coeffs, "{opts:?} {band:?}");
        }
    }
}

#[test]
fn styles_change_the_bitstream() {
    // The options are not no-ops: streams differ (so they must be
    // signalled, which pj2k-core does in the COD segment).
    let (w, h) = (16, 16);
    let coeffs = sample_block(w, h, 3);
    let base = encode_block_with(&coeffs, w, h, BandCtx::LlLh, ALL_OPTS[0]);
    let causal = encode_block_with(&coeffs, w, h, BandCtx::LlLh, ALL_OPTS[1]);
    let reset = encode_block_with(&coeffs, w, h, BandCtx::LlLh, ALL_OPTS[2]);
    assert_ne!(
        base.data, causal.data,
        "stripe-causal must alter the stream"
    );
    assert_ne!(base.data, reset.data, "context reset must alter the stream");
}

#[test]
fn bypass_trades_rate_for_simpler_coding() {
    // Bypassed passes are raw bits: the stream may grow, never shrink much,
    // and must still round-trip exactly (deep planes => bypass kicks in).
    let (w, h) = (32, 32);
    let coeffs: Vec<i32> = sample_block(w, h, 21).iter().map(|v| v * 16).collect();
    let base = encode_block_with(&coeffs, w, h, BandCtx::LlLh, ALL_OPTS[0]);
    let lazy = encode_block_with(
        &coeffs,
        w,
        h,
        BandCtx::LlLh,
        Tier1Options {
            bypass: true,
            ..Tier1Options::default()
        },
    );
    assert!(
        base.msb_planes >= 6,
        "need deep planes: {}",
        base.msb_planes
    );
    assert_ne!(base.data, lazy.data, "bypass must alter the stream");
    let segs: Vec<&[u8]> = (0..lazy.passes.len()).map(|p| lazy.segment(p)).collect();
    let got = pj2k_ebcot::decode_block_with(
        w,
        h,
        BandCtx::LlLh,
        lazy.msb_planes,
        &segs,
        Tier1Options {
            bypass: true,
            ..Tier1Options::default()
        },
    )
    .unwrap();
    assert_eq!(got, coeffs);
    // Rate penalty is bounded (it is content-dependent: random blocks are
    // the worst case for raw significance coding; natural imagery pays a
    // few percent).
    assert!(
        (lazy.data.len() as f64) < base.data.len() as f64 * 1.8,
        "bypass blew up the rate: {} vs {}",
        lazy.data.len(),
        base.data.len()
    );
}

#[test]
fn reset_contexts_costs_rate() {
    // Fresh contexts every pass adapt slower: the stream should not shrink.
    let (w, h) = (32, 32);
    let coeffs = sample_block(w, h, 11);
    let base = encode_block_with(&coeffs, w, h, BandCtx::Hh, ALL_OPTS[0]);
    let reset = encode_block_with(&coeffs, w, h, BandCtx::Hh, ALL_OPTS[2]);
    assert!(
        reset.data.len() >= base.data.len(),
        "reset {} < base {}",
        reset.data.len(),
        base.data.len()
    );
}

#[test]
fn causal_only_differs_when_stripes_interact() {
    // A block a single stripe tall has no next stripe: stripe-causal
    // context formation is then a no-op and streams must match.
    let coeffs = sample_block(24, 4, 5);
    let base = encode_block_with(&coeffs, 24, 4, BandCtx::LlLh, ALL_OPTS[0]);
    let causal = encode_block_with(&coeffs, 24, 4, BandCtx::LlLh, ALL_OPTS[1]);
    assert_eq!(base.data, causal.data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn styles_roundtrip_arbitrary_blocks(
        w in 1usize..20,
        h in 1usize..20,
        seed in any::<u64>(),
        causal in any::<bool>(),
        reset in any::<bool>(),
        bypass in any::<bool>(),
    ) {
        let opts = Tier1Options { stripe_causal: causal, reset_contexts: reset, bypass };
        let coeffs = sample_block(w, h, seed);
        let blk = encode_block_with(&coeffs, w, h, BandCtx::Hl, opts);
        let segs: Vec<&[u8]> = (0..blk.passes.len()).map(|p| blk.segment(p)).collect();
        prop_assert_eq!(decode_block_with(w, h, BandCtx::Hl, blk.msb_planes, &segs, opts).unwrap(), coeffs);
    }

    /// Truncated decodes still match the encoder's distortion bookkeeping
    /// under every style.
    #[test]
    fn styles_keep_rd_contract(seed in any::<u64>(), causal in any::<bool>(), reset in any::<bool>(), bypass in any::<bool>()) {
        let opts = Tier1Options { stripe_causal: causal, reset_contexts: reset, bypass };
        let (w, h) = (12, 10);
        let coeffs = sample_block(w, h, seed);
        let blk = encode_block_with(&coeffs, w, h, BandCtx::Hh, opts);
        for n in 0..=blk.passes.len() {
            let segs: Vec<&[u8]> = (0..n).map(|p| blk.segment(p)).collect();
            let got = decode_block_with(w, h, BandCtx::Hh, blk.msb_planes, &segs, opts).unwrap();
            let actual: f64 = got
                .iter()
                .zip(&coeffs)
                .map(|(a, b)| (f64::from(*a) - f64::from(*b)).powi(2))
                .sum();
            let predicted = blk.distortion_after(n);
            prop_assert!((actual - predicted).abs() < 1e-6 * (1.0 + predicted), "pass {}", n);
        }
    }
}
