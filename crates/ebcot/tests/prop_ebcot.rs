//! Property tests: EBCOT Tier-1 must round-trip any coefficient block
//! exactly, and every pass-boundary truncation must decode with exactly
//! the distortion the encoder predicted.

use pj2k_ebcot::{decode_block, encode_block, BandCtx};
use proptest::prelude::*;

fn arb_block() -> impl Strategy<Value = (Vec<i32>, usize, usize)> {
    (1usize..24, 1usize..24).prop_flat_map(|(w, h)| {
        (
            proptest::collection::vec(-5000i32..5000, w * h),
            Just(w),
            Just(h),
        )
            .prop_map(|(v, w, h)| (v, w, h))
    })
}

fn arb_sparse_block() -> impl Strategy<Value = (Vec<i32>, usize, usize)> {
    (4usize..32, 4usize..32, any::<u64>()).prop_map(|(w, h, seed)| {
        let mut state = seed | 1;
        let v = (0..w * h)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state % 11 == 0 {
                    ((state >> 40) as i32 % 4000) - 2000
                } else {
                    0
                }
            })
            .collect();
        (v, w, h)
    })
}

fn bands() -> impl Strategy<Value = BandCtx> {
    prop_oneof![Just(BandCtx::LlLh), Just(BandCtx::Hl), Just(BandCtx::Hh)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn full_roundtrip_is_exact((coeffs, w, h) in arb_block(), band in bands()) {
        let blk = encode_block(&coeffs, w, h, band);
        let segs: Vec<&[u8]> = (0..blk.passes.len()).map(|p| blk.segment(p)).collect();
        let got = decode_block(w, h, band, blk.msb_planes, &segs).unwrap();
        prop_assert_eq!(got, coeffs);
    }

    #[test]
    fn sparse_roundtrip_is_exact((coeffs, w, h) in arb_sparse_block(), band in bands()) {
        let blk = encode_block(&coeffs, w, h, band);
        let segs: Vec<&[u8]> = (0..blk.passes.len()).map(|p| blk.segment(p)).collect();
        let got = decode_block(w, h, band, blk.msb_planes, &segs).unwrap();
        prop_assert_eq!(got, coeffs);
    }

    /// Truncating at a random pass boundary decodes to exactly the
    /// distortion the encoder's bookkeeping predicted — the contract PCRD
    /// relies on.
    #[test]
    fn truncation_matches_prediction((coeffs, w, h) in arb_block(), band in bands(), cut_seed in any::<u64>()) {
        let blk = encode_block(&coeffs, w, h, band);
        if blk.passes.is_empty() {
            return Ok(());
        }
        let n = (cut_seed % (blk.passes.len() as u64 + 1)) as usize;
        let segs: Vec<&[u8]> = (0..n).map(|p| blk.segment(p)).collect();
        let got = decode_block(w, h, band, blk.msb_planes, &segs).unwrap();
        let actual: f64 = got
            .iter()
            .zip(&coeffs)
            .map(|(a, b)| (f64::from(*a) - f64::from(*b)).powi(2))
            .sum();
        let predicted = blk.distortion_after(n);
        prop_assert!(
            (actual - predicted).abs() < 1e-6 * (1.0 + predicted),
            "passes {}: predicted {} vs actual {}", n, predicted, actual
        );
    }

    /// Rates are strictly increasing per pass and distortion reductions
    /// non-negative.
    #[test]
    fn pass_metadata_is_sane((coeffs, w, h) in arb_block()) {
        let blk = encode_block(&coeffs, w, h, BandCtx::LlLh);
        let mut rate = 0;
        for p in &blk.passes {
            prop_assert!(p.len >= 1, "terminated pass emits at least one byte");
            rate += p.len;
            // Significance and cleanup passes always reduce error; a
            // refinement pass may *slightly* increase it when a magnitude
            // sits exactly on the previous bin midpoint (midpoint
            // reconstruction artifact), bounded by (2^plane / 2)^2 per
            // coefficient.
            match p.kind {
                pj2k_ebcot::PassKind::MagRef => {
                    let per_coeff = f64::from(1u32 << p.plane) / 2.0;
                    let bound = per_coeff * per_coeff * (blk.width * blk.height) as f64;
                    prop_assert!(p.delta_distortion >= -bound - 1e-9);
                }
                _ => prop_assert!(p.delta_distortion >= -1e-9),
            }
        }
        prop_assert_eq!(rate, blk.data.len());
        // Total reduction equals the initial distortion (full precision).
        let total: f64 = blk.passes.iter().map(|p| p.delta_distortion).sum();
        prop_assert!((total - blk.initial_distortion).abs() < 1e-6 * (1.0 + blk.initial_distortion));
    }

    /// Coding must be insensitive to a constant sign flip: magnitudes and
    /// pass structure identical, only sign decisions differ.
    #[test]
    fn sign_flip_preserves_structure((coeffs, w, h) in arb_block()) {
        let blk_pos = encode_block(&coeffs, w, h, BandCtx::Hh);
        let flipped: Vec<i32> = coeffs.iter().map(|v| -v).collect();
        let blk_neg = encode_block(&flipped, w, h, BandCtx::Hh);
        prop_assert_eq!(blk_pos.msb_planes, blk_neg.msb_planes);
        prop_assert_eq!(blk_pos.passes.len(), blk_neg.passes.len());
        prop_assert!((blk_pos.initial_distortion - blk_neg.initial_distortion).abs() < 1e-9);
        // And the flipped block still round-trips.
        let segs: Vec<&[u8]> = (0..blk_neg.passes.len()).map(|p| blk_neg.segment(p)).collect();
        prop_assert_eq!(decode_block(w, h, BandCtx::Hh, blk_neg.msb_planes, &segs).unwrap(), flipped);
    }
}
