//! LRU set-associative cache model.

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// The Pentium II Xeon L1 data cache the paper ran on:
    /// 16 KiB, 4-way, 32-byte lines (128 sets).
    pub const PENTIUM2_L1D: CacheConfig = CacheConfig {
        size_bytes: 16 * 1024,
        line_bytes: 32,
        ways: 4,
    };

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.line_bytes * self.ways)
    }

    /// Validate the geometry.
    ///
    /// # Panics
    /// Panics on zero or non-power-of-two parameters, or inconsistent size.
    pub fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two() && self.line_bytes > 0);
        assert!(self.ways > 0);
        assert!(
            self.size_bytes.is_multiple_of(self.line_bytes * self.ways),
            "ragged sets"
        );
        assert!(
            self.sets().is_power_of_two(),
            "set count must be a power of two"
        );
    }

    /// How many distinct cache sets the lines of one image column touch,
    /// for a row pitch of `stride_bytes` (the paper's key quantity — 1
    /// means the whole column thrashes a single set).
    pub fn column_sets(&self, stride_bytes: usize, rows: usize) -> usize {
        let sets = self.sets();
        let mut seen = vec![false; sets];
        let mut count = 0;
        for r in 0..rows {
            let set = (r * stride_bytes / self.line_bytes) % sets;
            if !seen[set] {
                seen[set] = true;
                count += 1;
            }
        }
        count
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (line fill).
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 for no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Bytes transferred from memory (misses x line size).
    pub fn miss_bytes(&self, cfg: &CacheConfig) -> u64 {
        self.misses * cfg.line_bytes as u64
    }
}

/// An LRU set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Per set: tags in LRU order (front = most recent).
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl Cache {
    /// Empty cache of the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            sets: vec![Vec::with_capacity(cfg.ways); cfg.sets()],
            stats: CacheStats::default(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Access byte address `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.cfg.line_bytes as u64;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            set.remove(pos);
            set.insert(0, tag);
            self.stats.hits += 1;
            true
        } else {
            if set.len() == self.cfg.ways {
                set.pop();
            }
            set.insert(0, tag);
            self.stats.misses += 1;
            false
        }
    }

    /// Run a whole address sequence.
    pub fn run<I: IntoIterator<Item = u64>>(&mut self, addrs: I) {
        for a in addrs {
            self.access(a);
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clear contents and counters.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheConfig {
        CacheConfig {
            size_bytes: 256,
            line_bytes: 16,
            ways: 2,
        } // 8 sets
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::PENTIUM2_L1D.sets(), 128);
        assert_eq!(tiny().sets(), 8);
    }

    #[test]
    fn sequential_access_within_line_hits() {
        let mut c = Cache::new(tiny());
        assert!(!c.access(0));
        assert!(c.access(1));
        assert!(c.access(15));
        assert!(!c.access(16));
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new(tiny());
        // Set 0 receives lines 0, 8, 16 (addresses 0, 128, 256): 2 ways.
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(c.access(0)); // refresh line 0
        assert!(!c.access(256)); // evicts line 8 (LRU), not line 0
        assert!(c.access(0));
        assert!(!c.access(128)); // line 8 was evicted
    }

    #[test]
    fn conflict_thrashing_with_strided_addresses() {
        // Addresses spaced by sets*line = 128 bytes all map to set 0; with
        // 2 ways, a cyclic walk over 3+ such lines always misses.
        let mut c = Cache::new(tiny());
        for _ in 0..10 {
            for k in 0..3u64 {
                c.access(k * 128);
            }
        }
        assert_eq!(c.stats().hits, 0, "{:?}", c.stats());
    }

    #[test]
    fn column_sets_matches_paper_claim() {
        let cfg = CacheConfig::PENTIUM2_L1D;
        // 4096-wide f32 image: stride 16384 bytes, multiple of
        // sets*line = 4096 => a column hits exactly one set.
        assert_eq!(cfg.column_sets(4096 * 4, 64), 1);
        assert_eq!(
            cfg.column_sets(2048 * 4, 64),
            1,
            "any multiple of sets*line"
        );
        // 512-wide f32 rows (2 KiB pitch) alternate between two sets.
        assert_eq!(cfg.column_sets(512 * 4, 64), 2);
        // Padding the width by 8 samples spreads the column over many sets.
        assert_eq!(cfg.column_sets((4096 + 8) * 4, 128), 128);
    }

    #[test]
    fn reset_clears() {
        let mut c = Cache::new(tiny());
        c.access(0);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
        assert!(!c.access(0), "cold after reset");
    }

    #[test]
    fn miss_bytes() {
        let cfg = tiny();
        let s = CacheStats { hits: 3, misses: 5 };
        assert_eq!(s.miss_bytes(&cfg), 80);
        assert!((s.miss_rate() - 5.0 / 8.0).abs() < 1e-12);
    }
}
