//! Address-trace generators for the filtering strategies.
//!
//! The reference implementations the paper profiles compute each vertical
//! output sample as a `taps`-long dot product *down the column* (the 9/7
//! filter bank has 9/7-tap analysis filters — hence the paper's remark
//! that the pathology appears once "the filter length is longer than 4
//! (this corresponds to the 4-way associative cache)"): with a
//! power-of-two row pitch every tap of a column lands in the same cache
//! set, the 9-line working window cannot be held by 4 ways, and **every**
//! access misses. Padding the pitch spreads the window over distinct sets
//! (taps then survive from one output row to the next); strip filtering
//! additionally amortizes each fetched line over `strip` adjacent columns.
//!
//! The generators below replay those access sequences, abstracted to byte
//! addresses, for the simulator in [`crate::cache`].

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Geometry of a filtering pass.
#[derive(Debug, Clone, Copy)]
pub struct FilterTraceParams {
    /// Region width in samples (columns filtered).
    pub width: usize,
    /// Region height in samples.
    pub height: usize,
    /// Row pitch in samples (>= width; the paper's padding fix raises this
    /// off the power of two).
    pub stride: usize,
    /// Bytes per sample (4 for `f32`/`i32`).
    pub elem_bytes: usize,
    /// Filter length (9 for the 9/7's lowpass analysis filter).
    pub taps: usize,
}

impl FilterTraceParams {
    /// Standard parameters for a `width x height` region of `f32` samples
    /// with the 9-tap filter.
    pub fn f32_97(width: usize, height: usize, stride: usize) -> Self {
        Self {
            width,
            height,
            stride,
            elem_bytes: 4,
            taps: 9,
        }
    }

    fn addr(&self, x: usize, y: usize) -> u64 {
        ((y * self.stride + x) * self.elem_bytes) as u64
    }

    fn tap_rows(&self, y: usize) -> impl Iterator<Item = usize> + '_ {
        let half = (self.taps / 2) as isize;
        let h = self.height as isize;
        (-half..=half).map(move |d| (y as isize + d).clamp(0, h - 1) as usize)
    }
}

/// Replay naive column-at-a-time vertical filtering: for each column, each
/// output row reads its `taps`-row window and writes the result.
pub fn vertical_naive_trace(p: &FilterTraceParams, cfg: CacheConfig) -> CacheStats {
    let mut cache = Cache::new(cfg);
    for x in 0..p.width {
        for y in 0..p.height {
            for ty in p.tap_rows(y) {
                cache.access(p.addr(x, ty));
            }
            cache.access(p.addr(x, y)); // write-back of the output
        }
    }
    cache.stats()
}

/// Replay strip vertical filtering (the paper's improved version): `strip`
/// adjacent columns advance down the rows together, so each fetched line
/// serves `strip` dot products.
pub fn vertical_strip_trace(p: &FilterTraceParams, strip: usize, cfg: CacheConfig) -> CacheStats {
    let strip = strip.max(1);
    let mut cache = Cache::new(cfg);
    let mut x0 = 0;
    while x0 < p.width {
        let s = strip.min(p.width - x0);
        for y in 0..p.height {
            for ty in p.tap_rows(y) {
                for dx in 0..s {
                    cache.access(p.addr(x0 + dx, ty));
                }
            }
            for dx in 0..s {
                cache.access(p.addr(x0 + dx, y));
            }
        }
        x0 += s;
    }
    cache.stats()
}

/// Replay horizontal filtering: the tap window slides along the row
/// (contiguous addresses) — the naturally cache-friendly direction.
pub fn horizontal_filter_trace(p: &FilterTraceParams, cfg: CacheConfig) -> CacheStats {
    let mut cache = Cache::new(cfg);
    let half = (p.taps / 2) as isize;
    let w = p.width as isize;
    for y in 0..p.height {
        for x in 0..p.width {
            for d in -half..=half {
                let tx = (x as isize + d).clamp(0, w - 1) as usize;
                cache.access(p.addr(tx, y));
            }
            cache.access(p.addr(x, y));
        }
    }
    cache.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(width: usize, height: usize, stride: usize) -> FilterTraceParams {
        FilterTraceParams::f32_97(width, height, stride)
    }

    /// The paper's central quantitative claim: power-of-two pitch makes
    /// naive vertical filtering miss almost always (9-line window in one
    /// 4-way set), while horizontal filtering misses once per line.
    #[test]
    fn pow2_vertical_thrashes_horizontal_does_not() {
        let cfg = CacheConfig::PENTIUM2_L1D;
        let p = params(64, 512, 1024); // pitch 4096 B: column -> 1 set
        let v = vertical_naive_trace(&p, cfg);
        let h = horizontal_filter_trace(&p, cfg);
        assert!(
            v.miss_rate() > 0.85,
            "naive vertical should thrash: {}",
            v.miss_rate()
        );
        assert!(
            h.miss_rate() < 0.05,
            "horizontal should stream: {}",
            h.miss_rate()
        );
    }

    #[test]
    fn padding_the_width_fixes_naive_vertical() {
        let cfg = CacheConfig::PENTIUM2_L1D;
        let pow2 = params(64, 2048, 2048);
        let padded = params(64, 2048, 2048 + 8);
        let bad = vertical_naive_trace(&pow2, cfg).miss_rate();
        let good = vertical_naive_trace(&padded, cfg).miss_rate();
        assert!(bad > 0.85, "pow2 should thrash: {bad}");
        assert!(
            good < bad / 4.0,
            "padding should slash the miss rate: {bad} -> {good}"
        );
    }

    #[test]
    fn strip_filtering_fixes_pow2_vertical() {
        let cfg = CacheConfig::PENTIUM2_L1D;
        let p = params(64, 512, 1024);
        let naive = vertical_naive_trace(&p, cfg);
        let strip8 = vertical_strip_trace(&p, 8, cfg);
        assert!(
            strip8.miss_rate() < naive.miss_rate() / 5.0,
            "strip should slash the miss rate: {} -> {}",
            naive.miss_rate(),
            strip8.miss_rate()
        );
    }

    #[test]
    fn strip_of_one_equals_naive() {
        let cfg = CacheConfig::PENTIUM2_L1D;
        let p = params(32, 128, 256);
        assert_eq!(
            vertical_strip_trace(&p, 1, cfg),
            vertical_naive_trace(&p, cfg)
        );
    }

    #[test]
    fn wider_strips_monotonically_reduce_misses_on_pow2() {
        let cfg = CacheConfig::PENTIUM2_L1D;
        let p = params(64, 2048, 4096); // tall power-of-two image
        let m1 = vertical_strip_trace(&p, 1, cfg).miss_rate();
        let m4 = vertical_strip_trace(&p, 4, cfg).miss_rate();
        let m8 = vertical_strip_trace(&p, 8, cfg).miss_rate();
        assert!(m4 < m1 && m8 < m4, "m1={m1} m4={m4} m8={m8}");
    }

    #[test]
    fn small_image_fits_in_cache_and_stops_missing() {
        // 32x32 f32 = 4 KiB << 16 KiB: after the first sweep everything is
        // resident even for naive vertical filtering.
        let cfg = CacheConfig::PENTIUM2_L1D;
        let p = params(32, 32, 32);
        let v = vertical_naive_trace(&p, cfg);
        assert!(
            v.miss_rate() < 0.05,
            "resident working set should mostly hit: {}",
            v.miss_rate()
        );
    }

    #[test]
    fn short_filters_do_not_thrash_pow2() {
        // The paper: the pathology needs filter length > associativity.
        // A 3-tap filter's window fits in the 4 ways even in one set.
        let cfg = CacheConfig::PENTIUM2_L1D;
        let mut p = params(64, 512, 1024);
        p.taps = 3;
        let v = vertical_naive_trace(&p, cfg);
        assert!(
            v.miss_rate() < 0.5,
            "3-tap window fits the 4 ways: {}",
            v.miss_rate()
        );
    }
}
