//! Set-associative cache simulator and wavelet-filtering address traces.
//!
//! The paper's §3.2 diagnoses the poor performance of vertical wavelet
//! filtering as a cache pathology: *"when using large images with width
//! equal to a power-of-two and the filter length is longer than 4 (this
//! corresponds to the 4-way associative cache), an entire image column is
//! mapped onto a single cache set"*. The authors verify their fixes
//! (padding the width, strip filtering) indirectly through runtimes on a
//! 2002 SMP; this crate verifies them *directly* by replaying the exact
//! address sequences of the three filtering strategies through a
//! configurable LRU set-associative cache (default: the Pentium II Xeon's
//! 16 KiB / 4-way / 32-byte-line L1D).

pub mod cache;
pub mod trace;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use trace::{
    horizontal_filter_trace, vertical_naive_trace, vertical_strip_trace, FilterTraceParams,
};
