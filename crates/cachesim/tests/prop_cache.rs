//! Property tests for the cache simulator.

use pj2k_cachesim::{Cache, CacheConfig, FilterTraceParams};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (3u32..7, 0u32..4, 1usize..5).prop_map(|(line_pow, set_pow, ways)| {
        let line = 1usize << line_pow;
        let sets = 1usize << set_pow;
        CacheConfig {
            size_bytes: line * sets * ways,
            line_bytes: line,
            ways,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Immediately repeated accesses always hit.
    #[test]
    fn repeat_access_hits(cfg in arb_config(), addrs in proptest::collection::vec(0u64..100_000, 1..200)) {
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(a);
            prop_assert!(c.access(a), "repeat of {:#x} must hit", a);
        }
    }

    /// A working set no larger than the cache, accessed cyclically, stops
    /// missing after the first sweep (LRU, fully resident).
    #[test]
    fn resident_set_stops_missing(cfg in arb_config(), sweeps in 2usize..6) {
        // distinct lines, at most one per way slot
        let lines = cfg.sets() * cfg.ways;
        let mut c = Cache::new(cfg);
        for _ in 0..sweeps {
            for i in 0..lines {
                c.access((i * cfg.line_bytes) as u64);
            }
        }
        let stats = c.stats();
        prop_assert_eq!(stats.misses, lines as u64, "only compulsory misses: {:?}", stats);
    }

    /// Hits + misses always equals accesses; miss_rate within [0,1].
    #[test]
    fn counters_consistent(cfg in arb_config(), addrs in proptest::collection::vec(any::<u32>(), 0..300)) {
        let mut c = Cache::new(cfg);
        for &a in &addrs {
            c.access(u64::from(a));
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert!((0.0..=1.0).contains(&s.miss_rate()));
    }

    /// A larger (more ways) cache never misses more on the same trace
    /// (LRU is a stack algorithm — inclusion property).
    #[test]
    fn more_ways_never_hurt(addrs in proptest::collection::vec(0u64..4096, 1..300)) {
        let small = CacheConfig { size_bytes: 512, line_bytes: 32, ways: 1 };
        let big = CacheConfig { size_bytes: 1024, line_bytes: 32, ways: 2 };
        let mut cs = Cache::new(small);
        let mut cb = Cache::new(big);
        for &a in &addrs {
            cs.access(a);
            cb.access(a);
        }
        prop_assert!(cb.stats().misses <= cs.stats().misses,
            "{:?} vs {:?}", cb.stats(), cs.stats());
    }

    /// Trace generators: padding the stride never increases the
    /// naive-vertical miss count on power-of-two pitches.
    #[test]
    fn padding_never_hurts(wpow in 8usize..12, h in 64usize..256) {
        let width = 1usize << wpow;
        let cfg = CacheConfig::PENTIUM2_L1D;
        let base = FilterTraceParams::f32_97(16, h, width);
        let padded = FilterTraceParams { stride: width + 8, ..base };
        let m0 = pj2k_cachesim::vertical_naive_trace(&base, cfg).misses;
        let m1 = pj2k_cachesim::vertical_naive_trace(&padded, cfg).misses;
        prop_assert!(m1 <= m0, "padding increased misses: {} -> {}", m0, m1);
    }
}
