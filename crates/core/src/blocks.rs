//! Code-block and resolution geometry on top of the DWT subband layout.

use pj2k_dwt::{Band, Decomposition, Subband};
use pj2k_ebcot::BandCtx;

/// Zero-coding context class for a subband orientation.
pub fn band_ctx(band: Band) -> BandCtx {
    match band {
        Band::LL | Band::LH => BandCtx::LlLh,
        Band::HL => BandCtx::Hl,
        Band::HH => BandCtx::Hh,
    }
}

/// Group subbands into resolutions: resolution 0 is the deepest `LL`,
/// resolution `r >= 1` holds `HL/LH/HH` of decomposition level
/// `levels - r + 1`. Index by `resolutions(deco)[r]`.
pub fn resolutions(deco: &Decomposition) -> Vec<Vec<Subband>> {
    indexed_resolutions(deco)
        .into_iter()
        .map(|bands| bands.into_iter().map(|(_, sb)| sb).collect())
        .collect()
}

/// [`resolutions`], with each subband paired with its index in
/// `Decomposition::subbands()` order — the index the per-band Kmax tables
/// of the codestream are keyed by. Carrying it from here saves every
/// consumer a fallible reverse lookup.
// AUDIT(hot): per-tile geometry setup — one Vec per resolution level,
// built once before any block is decoded.
pub fn indexed_resolutions(deco: &Decomposition) -> Vec<Vec<(usize, Subband)>> {
    let bands = deco.subbands();
    let mut out: Vec<Vec<(usize, Subband)>> = vec![Vec::new(); deco.levels as usize + 1];
    for (i, sb) in bands.into_iter().enumerate() {
        let r = match sb.band {
            Band::LL => 0,
            _ => (deco.levels - sb.level) as usize + 1,
        };
        out[r].push((i, sb));
    }
    out
}

/// One code-block's placement, in transformed-plane coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGeom {
    /// Left column in the plane.
    pub x0: usize,
    /// Top row in the plane.
    pub y0: usize,
    /// Width in coefficients.
    pub w: usize,
    /// Height in coefficients.
    pub h: usize,
}

/// Code-block grid dimensions of a subband for `cb = (width, height)`
/// blocks: `(columns, rows)`; `(0, 0)` for empty bands.
pub fn grid_dims(sb: &Subband, cb: (usize, usize)) -> (usize, usize) {
    if sb.is_empty() {
        (0, 0)
    } else {
        (sb.w.div_ceil(cb.0), sb.h.div_ceil(cb.1))
    }
}

/// All code-blocks of a subband in raster order (row-major over the grid).
// AUDIT(hot): per-band geometry setup — one exact-capacity Vec built
// once per subband, before the block loops start.
pub fn blocks_of(sb: &Subband, cb: (usize, usize)) -> Vec<BlockGeom> {
    let (gw, gh) = grid_dims(sb, cb);
    let mut out = Vec::with_capacity(gw * gh);
    for by in 0..gh {
        for bx in 0..gw {
            let x0 = sb.x0 + bx * cb.0;
            let y0 = sb.y0 + by * cb.1;
            out.push(BlockGeom {
                x0,
                y0,
                w: (sb.x0 + sb.w - x0).min(cb.0),
                h: (sb.y0 + sb.h - y0).min(cb.1),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolutions_partition_bands() {
        let deco = Decomposition::new(256, 256, 5);
        let res = resolutions(&deco);
        assert_eq!(res.len(), 6);
        assert_eq!(res[0].len(), 1);
        assert_eq!(res[0][0].band, Band::LL);
        for (r, bands) in res.iter().enumerate().skip(1) {
            assert_eq!(bands.len(), 3, "resolution {r}");
            // resolution 1 = deepest detail level (5), resolution 5 = level 1
            assert!(bands.iter().all(|b| b.level == (6 - r) as u8));
        }
    }

    #[test]
    fn indexed_resolutions_carry_subband_order() {
        let deco = Decomposition::new(200, 120, 4);
        let flat = deco.subbands();
        for (bidx, sb) in indexed_resolutions(&deco).into_iter().flatten() {
            assert_eq!(flat[bidx], sb, "index {bidx} disagrees with subbands()");
        }
    }

    #[test]
    fn blocks_tile_band_exactly() {
        let sb = Subband {
            band: Band::HL,
            level: 1,
            x0: 100,
            y0: 0,
            w: 150,
            h: 90,
        };
        let blocks = blocks_of(&sb, (64, 64));
        assert_eq!(blocks.len(), 3 * 2);
        let area: usize = blocks.iter().map(|b| b.w * b.h).sum();
        assert_eq!(area, 150 * 90);
        // Right-edge block is narrower.
        assert_eq!(blocks[2].w, 150 - 128);
        assert_eq!(blocks[5].h, 90 - 64);
        assert_eq!(blocks[0].x0, 100);
        assert_eq!(blocks[3].y0, 64);
    }

    #[test]
    fn empty_band_has_no_blocks() {
        let sb = Subband {
            band: Band::HH,
            level: 3,
            x0: 1,
            y0: 1,
            w: 0,
            h: 5,
        };
        assert_eq!(grid_dims(&sb, (64, 64)), (0, 0));
        assert!(blocks_of(&sb, (64, 64)).is_empty());
    }

    #[test]
    fn ctx_mapping() {
        assert_eq!(band_ctx(Band::LL), BandCtx::LlLh);
        assert_eq!(band_ctx(Band::LH), BandCtx::LlLh);
        assert_eq!(band_ctx(Band::HL), BandCtx::Hl);
        assert_eq!(band_ctx(Band::HH), BandCtx::Hh);
    }
}
