//! Scalar dead-zone quantization (lossy 9/7 path).
//!
//! Each subband `b` uses step `Δ_b = base_step / g_b`, where `g_b` is the
//! band's L2 synthesis gain ([`pj2k_dwt::gains`]), so that a unit quantized
//! error contributes comparably to pixel-domain MSE in every band —
//! which also makes PCRD slopes commensurable across bands.
//!
//! Dequantization reconstructs mid-bin: `v = sign(q) * (|q| + 0.5) * Δ_b`.
//! For layer-truncated blocks the Tier-1 decoder already returns the
//! integer-domain bin midpoint, so the extra half step is a slight
//! overshoot there; the effect on PSNR is far below the truncation error
//! itself (see DESIGN.md §5).
//!
//! This stage is one of the paper's parallel targets (§3.3: "every
//! processor may have a chunk of coefficients ... speedups of approximately
//! 3.2"): rows of the coefficient plane are split statically over the
//! executor.

use pj2k_dwt::{gains, Band};
use pj2k_image::Plane;
use pj2k_parutil::{Exec, SendPtr};

/// Quantization step for band `band` at decomposition `level`.
pub fn band_step(base_step: f64, level: u8, band: Band) -> f64 {
    base_step / gains::l2_gain_97(level, band)
}

/// Distortion scale factor turning Tier-1 integer-domain squared error into
/// pixel-domain MSE contribution: `(Δ_b * g_b)^2` — with the step above this
/// is simply `base_step^2`, but it is computed explicitly so alternative
/// step policies keep working.
pub fn distortion_scale(step: f64, level: u8, band: Band) -> f64 {
    let g = gains::l2_gain_97(level, band);
    (step * g) * (step * g)
}

/// Quantize one coefficient with a precomputed reciprocal step
/// `inv = 1/Δ_b`: `q = sign(v) * floor(|v| * inv)`.
///
/// This is the exact expression [`quantize_plane`] applies per sample; the
/// pipelined encoder calls it directly while staging subband coefficients
/// into the Tier-1 scratch buffer, so both paths stay bit-identical by
/// construction.
#[inline]
pub fn quantize_value(v: f32, inv: f64) -> i32 {
    let q = (f64::from(v).abs() * inv).floor() as i32;
    if v < 0.0 {
        -q
    } else {
        q
    }
}

/// Dequantize one index mid-bin: `v = sign(q) * (|q| + 0.5) * Δ_b`, with
/// `q == 0` mapping to exactly `0.0`.
///
/// This is the exact expression [`dequantize_plane`] applies per sample; the
/// pipelined decoder calls it directly while scattering freshly decoded
/// code-blocks into subband buffers, so both paths stay bit-identical by
/// construction.
#[inline]
pub fn dequantize_value(q: i32, step: f64) -> f32 {
    if q == 0 {
        0.0
    } else {
        let m = (f64::from(q.abs()) + 0.5) * step;
        if q < 0 {
            -m as f32
        } else {
            m as f32
        }
    }
}

/// Quantize an f32 coefficient plane into i32 indices, in place over rows
/// split across `exec` workers: `q = sign(v) * floor(|v| / step)`.
pub fn quantize_plane(
    src: &Plane<f32>,
    dst: &mut Plane<i32>,
    region: (usize, usize, usize, usize),
    step: f64,
    exec: &Exec,
) {
    let (x0, y0, w, h) = region;
    debug_assert!(x0 + w <= src.width() && y0 + h <= src.height());
    let inv = 1.0 / step;
    let src_stride = src.stride();
    let dst_stride = dst.stride();
    let src_ptr = SendPtr(src.raw().as_ptr() as *mut f32);
    let dst_ptr = SendPtr::new(dst.raw_mut());
    exec.run_ranges(h, |rows| {
        let (src_ptr, dst_ptr) = (src_ptr, dst_ptr); // capture the Send wrappers
        for dy in rows {
            let y = y0 + dy;
            // SAFETY: rows are disjoint across workers; src is only read.
            let src_row =
                unsafe { std::slice::from_raw_parts(src_ptr.0.add(y * src_stride + x0), w) };
            // SAFETY: same disjoint row split; dst rows are exclusively
            // owned by this worker and in bounds (debug-asserted above).
            // AUDIT(alias): SendPtr bypasses the claim table on purpose —
            // run_ranges hands each worker a distinct `rows` range, so the
            // per-row spans never overlap; a DisjointClaim here would add
            // a lock acquisition per row to a per-sample hot loop.
            let dst_row = unsafe { dst_ptr.slice_mut(y * dst_stride + x0, w) };
            for (d, &v) in dst_row.iter_mut().zip(src_row) {
                *d = quantize_value(v, inv);
            }
        }
    });
}

/// Dequantize i32 indices back to f32 coefficients (mid-bin), in place over
/// rows split across `exec` workers.
pub fn dequantize_plane(
    src: &Plane<i32>,
    dst: &mut Plane<f32>,
    region: (usize, usize, usize, usize),
    step: f64,
    exec: &Exec,
) {
    let (x0, y0, w, h) = region;
    debug_assert!(x0 + w <= src.width() && y0 + h <= src.height());
    let src_stride = src.stride();
    let dst_stride = dst.stride();
    let src_ptr = SendPtr(src.raw().as_ptr() as *mut i32);
    let dst_ptr = SendPtr::new(dst.raw_mut());
    exec.run_ranges(h, |rows| {
        let (src_ptr, dst_ptr) = (src_ptr, dst_ptr); // capture the Send wrappers
        for dy in rows {
            let y = y0 + dy;
            // SAFETY: rows are disjoint across workers; src is only read.
            let src_row =
                unsafe { std::slice::from_raw_parts(src_ptr.0.add(y * src_stride + x0), w) };
            // SAFETY: same disjoint row split; dst rows are exclusively
            // owned by this worker and in bounds (debug-asserted above).
            // AUDIT(alias): SendPtr bypasses the claim table on purpose —
            // run_ranges hands each worker a distinct `rows` range, so the
            // per-row spans never overlap; a DisjointClaim here would add
            // a lock acquisition per row to a per-sample hot loop.
            let dst_row = unsafe { dst_ptr.slice_mut(y * dst_stride + x0, w) };
            for (d, &q) in dst_row.iter_mut().zip(src_row) {
                *d = dequantize_value(q, step);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_matches_scalar_definition() {
        let src = Plane::from_fn(8, 4, |x, y| (x as f32 - 3.5) * (y as f32 + 0.5) * 2.3);
        let mut dst = Plane::<i32>::new(8, 4);
        quantize_plane(&src, &mut dst, (0, 0, 8, 4), 0.5, &Exec::SEQ);
        for y in 0..4 {
            for x in 0..8 {
                let v = f64::from(src.get(x, y));
                let expect = (v.abs() / 0.5).floor() as i32 * v.signum() as i32;
                assert_eq!(dst.get(x, y), expect, "({x},{y})");
            }
        }
    }

    #[test]
    fn quant_dequant_error_bounded_by_step() {
        let src = Plane::from_fn(16, 16, |x, y| ((x * 31 + y * 7) % 97) as f32 - 48.0);
        let mut q = Plane::<i32>::new(16, 16);
        let mut back = Plane::<f32>::new(16, 16);
        let step = 0.75;
        quantize_plane(&src, &mut q, (0, 0, 16, 16), step, &Exec::SEQ);
        dequantize_plane(&q, &mut back, (0, 0, 16, 16), step, &Exec::SEQ);
        for y in 0..16 {
            for x in 0..16 {
                let err = (src.get(x, y) - back.get(x, y)).abs();
                assert!(err <= step as f32 * 0.5 + 1e-5, "({x},{y}): err {err}");
            }
        }
    }

    #[test]
    fn zero_stays_zero_and_signs_preserved() {
        let src = Plane::from_vec(3, 1, vec![0.0f32, -2.6, 2.6]);
        let mut q = Plane::<i32>::new(3, 1);
        quantize_plane(&src, &mut q, (0, 0, 3, 1), 1.0, &Exec::SEQ);
        assert_eq!(q.row(0), &[0, -2, 2]);
        let mut back = Plane::<f32>::new(3, 1);
        dequantize_plane(&q, &mut back, (0, 0, 3, 1), 1.0, &Exec::SEQ);
        assert_eq!(back.get(0, 0), 0.0);
        assert!(back.get(1, 0) < 0.0 && back.get(2, 0) > 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let src = Plane::from_fn(33, 29, |x, y| (x as f32 * 1.7 - y as f32 * 2.1) * 0.9);
        let mut a = Plane::<i32>::new(33, 29);
        let mut b = Plane::<i32>::new(33, 29);
        quantize_plane(&src, &mut a, (0, 0, 33, 29), 0.3, &Exec::SEQ);
        quantize_plane(&src, &mut b, (0, 0, 33, 29), 0.3, &Exec::threads(3));
        assert_eq!(a, b);
    }

    #[test]
    fn region_quantization_leaves_rest_untouched() {
        let src = Plane::from_fn(8, 8, |_, _| 10.0f32);
        let mut dst = Plane::<i32>::new(8, 8);
        quantize_plane(&src, &mut dst, (2, 3, 4, 2), 1.0, &Exec::SEQ);
        assert_eq!(dst.get(2, 3), 10);
        assert_eq!(dst.get(5, 4), 10);
        assert_eq!(dst.get(0, 0), 0);
        assert_eq!(dst.get(6, 3), 0);
    }

    #[test]
    fn band_step_scales_inversely_with_gain() {
        let s_ll = band_step(0.125, 3, Band::LL);
        let s_hh = band_step(0.125, 1, Band::HH);
        // LL at level 3 has much larger gain, hence smaller step.
        assert!(s_ll < s_hh);
        // distortion scale with matching step is base_step^2
        let d = distortion_scale(band_step(0.125, 2, Band::HL), 2, Band::HL);
        assert!((d - 0.125 * 0.125).abs() < 1e-12);
    }
}
