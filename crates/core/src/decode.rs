//! The decoding pipeline (mirror of [`crate::encode`]).
//!
//! Everything in this module runs against untrusted bytes (DESIGN.md §9):
//! parse failures carry marker/offset context through the structured
//! [`CodecError`] hierarchy, every allocation derived from header fields is
//! budget-capped *before* it happens, and all body reads are bounds-checked
//! `get`s — a malformed or truncated stream must yield `Err`, never a
//! panic or an out-of-memory abort.

#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

use crate::blocks::{band_ctx, blocks_of, grid_dims, indexed_resolutions};
use crate::config::ParallelMode;
use crate::quant::{band_step, dequantize_plane};
use crate::report::stage;
use pj2k_dwt::{
    inverse_53_with, inverse_97_with, Decomposition, DwtStats, LiftingMode, SimdMode,
    VerticalStrategy, Wavelet,
};
use pj2k_ebcot::{decode_block_with, Tier1Options};
use pj2k_image::tile::TileGrid;
use pj2k_image::transform::{dc_level_shift_inverse, ict_inverse, rct_inverse};
use pj2k_image::{Image, Plane};
use pj2k_parutil::{pool_map, Schedule, StageTimes};
use pj2k_tier2::codestream::{self, MarkerReader, ParseError, PayloadReader};
use pj2k_tier2::{decode_packet, PacketError, PrecinctState};
use rayon::prelude::*;
use std::time::Instant;

/// Largest number of code-blocks a single tile may instantiate decoder
/// state for. Per-block state (tag trees, Lblock counters, segment lists)
/// costs on the order of 100 bytes, so this bounds adversarial headers —
/// tiny streams claiming huge dimensions with minimal code-blocks — to a
/// modest worst-case allocation instead of multiple GiB.
const MAX_BLOCKS_PER_TILE: usize = 1 << 20;

/// Decoder-side failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// Malformed marker-segment container; carries the failing marker code
    /// and byte offset.
    Codestream(ParseError),
    /// Malformed packet header inside a tile body.
    Packet(PacketError),
    /// Inconsistent tier-1 block parameters.
    Tier1(pj2k_ebcot::DecodeError),
    /// Malformed tile body outside the marker layer.
    Parse(String),
    /// Structurally valid but semantically impossible stream.
    Invalid(String),
    /// Failed to acquire process resources (e.g. thread-pool
    /// construction) — a property of the host environment and the
    /// caller's configuration, never of the input bytes.
    Resource(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Codestream(e) => write!(f, "codestream error: {e}"),
            CodecError::Packet(e) => write!(f, "packet error: {e}"),
            CodecError::Tier1(e) => write!(f, "tier-1 error: {e}"),
            CodecError::Parse(m) => write!(f, "parse error: {m}"),
            CodecError::Invalid(m) => write!(f, "invalid codestream: {m}"),
            CodecError::Resource(m) => write!(f, "resource error: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<ParseError> for CodecError {
    fn from(e: ParseError) -> Self {
        CodecError::Codestream(e)
    }
}

impl From<PacketError> for CodecError {
    fn from(e: PacketError) -> Self {
        CodecError::Packet(e)
    }
}

impl From<pj2k_ebcot::DecodeError> for CodecError {
    fn from(e: pj2k_ebcot::DecodeError) -> Self {
        CodecError::Tier1(e)
    }
}

/// Decode-side run report.
#[derive(Debug, Clone, Default)]
pub struct DecodeReport {
    /// Wall-clock per pipeline stage.
    pub stages: StageTimes,
    /// Inverse-DWT filtering breakdown.
    pub dwt: DwtStats,
    /// Number of code-blocks with coded data.
    pub num_blocks: usize,
}

/// pj2k codestream decoder.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// Parallel execution of the inverse DWT and Tier-1 decoding.
    pub parallel: ParallelMode,
    /// Decode only the first `n` quality layers (progressive decoding);
    /// `None` decodes everything present.
    pub max_layers: Option<usize>,
    /// How [`ParallelMode::WorkerPool`] hands code-blocks to its workers
    /// during Tier-1 decoding — mirror of the encoder's knob. The decoded
    /// image is identical under every schedule; only the load balance
    /// changes.
    pub tier1_schedule: Schedule,
    /// SIMD tier for the inverse lifting kernels (bit-identical output
    /// across tiers; see [`SimdMode`]).
    pub simd: SimdMode,
}

impl Default for Decoder {
    fn default() -> Self {
        Self {
            parallel: ParallelMode::Sequential,
            max_layers: None,
            tier1_schedule: Schedule::StaggeredRoundRobin,
            simd: SimdMode::Auto,
        }
    }
}

/// Stream-level parameters parsed from the main header.
struct MainHeader {
    ncomp: usize,
    bit_depth: u8,
    signed: bool,
    tiles: Option<(usize, usize)>,
    wavelet: Wavelet,
    levels: u8,
    code_block: (usize, usize),
    n_layers: usize,
    base_step: f64,
    tier1: Tier1Options,
}

impl Decoder {
    /// Decode a pj2k codestream.
    ///
    /// # Errors
    /// Returns [`CodecError`] on malformed input.
    pub fn decode(&self, bytes: &[u8]) -> Result<(Image, DecodeReport), CodecError> {
        match self.parallel {
            ParallelMode::Rayon { workers } => {
                // AUDIT: pool construction depends on the caller's config
                // and process resources, never on the untrusted input
                // bytes; failure surfaces as `CodecError::Resource` so the
                // no-panic decode contract also covers resource
                // exhaustion.
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(workers.max(1))
                    .build()
                    .map_err(|e| CodecError::Resource(format!("rayon pool: {e}")))?;
                pool.install(|| self.decode_inner(bytes))
            }
            _ => self.decode_inner(bytes),
        }
    }

    fn decode_inner(&self, bytes: &[u8]) -> Result<(Image, DecodeReport), CodecError> {
        let mut report = DecodeReport::default();
        let t0 = Instant::now();
        let mut r = MarkerReader::new(bytes);
        r.expect_marker(codestream::SOC)?;
        let siz = r.expect_segment(codestream::SIZ)?;
        let mut p = PayloadReader::new(siz);
        let width = p.u32()? as usize;
        let height = p.u32()? as usize;
        let ncomp = p.u8()? as usize;
        let bit_depth = p.u8()?;
        let signed = p.u8()? != 0;
        let tw = p.u32()? as usize;
        let th = p.u32()? as usize;
        let cod = r.expect_segment(codestream::COD)?;
        let mut p = PayloadReader::new(cod);
        let wavelet = match p.u8()? {
            0 => Wavelet::Reversible53,
            1 => Wavelet::Irreversible97,
            x => return Err(CodecError::Invalid(format!("unknown wavelet {x}"))),
        };
        let levels = p.u8()?;
        let cbw = p.u16()? as usize;
        let cbh = p.u16()? as usize;
        let n_layers = p.u16()? as usize;
        let t1flags = p.u8()?;
        if t1flags > 7 {
            return Err(CodecError::Invalid(format!(
                "unknown tier-1 flags {t1flags:#x}"
            )));
        }
        let tier1 = Tier1Options {
            stripe_causal: t1flags & 1 != 0,
            reset_contexts: t1flags & 2 != 0,
            bypass: t1flags & 4 != 0,
        };
        let qcd = r.expect_segment(codestream::QCD)?;
        let base_step = PayloadReader::new(qcd).f64()?;
        let hdr = MainHeader {
            ncomp,
            bit_depth,
            signed,
            tiles: if tw == 0 { None } else { Some((tw, th)) },
            wavelet,
            levels,
            code_block: (cbw, cbh),
            n_layers,
            base_step,
            tier1,
        };
        if width == 0 || height == 0 || ncomp == 0 {
            return Err(CodecError::Invalid("empty image".into()));
        }
        // Harden against corrupted headers: bound allocations and reject
        // geometry the encoder can never produce.
        if width.saturating_mul(height).saturating_mul(ncomp) > (1 << 28) {
            return Err(CodecError::Invalid(format!(
                "implausible image size {width}x{height}x{ncomp}"
            )));
        }
        if ncomp > 4 {
            return Err(CodecError::Invalid(format!("{ncomp} components")));
        }
        if !(1..=16).contains(&bit_depth) {
            return Err(CodecError::Invalid(format!("bit depth {bit_depth}")));
        }
        if let Some((tw, th)) = hdr.tiles {
            if tw == 0 || th == 0 {
                return Err(CodecError::Invalid("zero tile dimension".into()));
            }
        }
        if hdr.levels > 12 {
            return Err(CodecError::Invalid(format!("{} levels", hdr.levels)));
        }
        let (cbw2, cbh2) = hdr.code_block;
        if !cbw2.is_power_of_two()
            || !cbh2.is_power_of_two()
            || !(4..=1024).contains(&cbw2)
            || !(4..=1024).contains(&cbh2)
            || cbw2.saturating_mul(cbh2) > 4096
        {
            return Err(CodecError::Invalid(format!("code-block {cbw2}x{cbh2}")));
        }
        if hdr.n_layers == 0 || hdr.n_layers > 4096 {
            return Err(CodecError::Invalid(format!("{} layers", hdr.n_layers)));
        }
        if !(hdr.base_step.is_finite() && hdr.base_step > 0.0) {
            return Err(CodecError::Invalid(format!("base step {}", hdr.base_step)));
        }
        report.stages.add(stage::BITSTREAM_IO, t0.elapsed());

        let grid = match hdr.tiles {
            Some((tw, th)) => TileGrid::new(width, height, tw, th),
            None => TileGrid::single(width, height),
        };
        // No pre-reservation: a corrupt header claiming 1x1 tiles over a
        // maximal image would otherwise reserve hundreds of millions of
        // slots before the first missing SOT segment is even noticed. Grown
        // incrementally, a truncated stream fails after one tile's work.
        let mut tiles = Vec::new();
        for i in 0..grid.len() {
            let t0 = Instant::now();
            let sot = r.expect_segment(codestream::SOT)?;
            let mut p = PayloadReader::new(sot);
            let idx = p.u32()? as usize;
            if idx != i {
                return Err(CodecError::Invalid(format!("tile {idx} out of order")));
            }
            let body_len = p.u32()? as usize;
            r.expect_marker(codestream::SOD)?;
            let body = r.raw(body_len)?;
            report.stages.add(stage::BITSTREAM_IO, t0.elapsed());
            let rect = grid.rect(i);
            tiles.push(self.decode_tile(&hdr, body, rect.w, rect.h, &mut report)?);
        }
        let t0 = Instant::now();
        r.expect_marker(codestream::EOC)?;
        let mut out = pj2k_image::tile::assemble(&tiles, &grid, hdr.bit_depth, hdr.signed);
        out.clamp_to_depth();
        report.stages.add(stage::SETUP, t0.elapsed());
        Ok((out, report))
    }

    fn decode_tile(
        &self,
        hdr: &MainHeader,
        body: &[u8],
        w: usize,
        h: usize,
        report: &mut DecodeReport,
    ) -> Result<Image, CodecError> {
        let exec = self.parallel.exec();
        let reversible = hdr.wavelet == Wavelet::Reversible53;
        let deco = Decomposition::new(w, h, hdr.levels);
        let res = indexed_resolutions(&deco);
        let band_list = deco.subbands();
        let nbands = band_list.len();

        // Budget the per-block decoder state BEFORE reading the tile body or
        // allocating any of it: grid_dims is pure arithmetic over validated
        // header fields, so a hostile header claiming a huge block count is
        // rejected without touching the allocator.
        let mut total_blocks = 0usize;
        for bands in &res {
            for (_bi, sb) in bands {
                let (gw, gh) = grid_dims(sb, hdr.code_block);
                total_blocks = total_blocks.saturating_add(gw.saturating_mul(gh));
            }
        }
        total_blocks = total_blocks.saturating_mul(hdr.ncomp);
        if total_blocks > MAX_BLOCKS_PER_TILE {
            return Err(CodecError::Invalid(format!(
                "tile requires state for {total_blocks} code-blocks \
                 (cap {MAX_BLOCKS_PER_TILE})"
            )));
        }

        // --- tier-2: parse Kmax table and packet headers -------------------
        let t0 = Instant::now();
        // ncomp <= 4 and nbands <= 1 + 3 * levels <= 37, both validated.
        let kmax_len = hdr.ncomp.saturating_mul(nbands);
        let kmax = body
            .get(..kmax_len)
            .ok_or_else(|| CodecError::Parse("truncated Kmax table".into()))?;
        if let Some(&bad) = kmax.iter().find(|&&k| k > pj2k_ebcot::MAX_PLANES) {
            return Err(CodecError::Invalid(format!(
                "Kmax {bad} exceeds the {} coded planes the coder supports",
                pj2k_ebcot::MAX_PLANES
            )));
        }
        let mut cursor = kmax_len;
        let (roi_s, roi_d) = match body.get(cursor..cursor.saturating_add(2)) {
            Some(&[s, d]) => (s, d),
            _ => return Err(CodecError::Parse("truncated ROI header".into())),
        };
        cursor = cursor.saturating_add(2);
        if roi_s > 30 || roi_d > 30 {
            return Err(CodecError::Invalid(format!(
                "implausible ROI shifts ({roi_s}, {roi_d})"
            )));
        }

        // Per-precinct state, mirroring the encoder's ordering.
        struct Prec {
            comp: usize,
            band: pj2k_dwt::Band,
            /// Index of the subband in `Decomposition::subbands()` order
            /// (the Kmax-table key).
            band_idx: usize,
            blocks: Vec<crate::blocks::BlockGeom>,
            state: PrecinctState,
            /// Per block: segments gathered across layers.
            segs: Vec<Vec<Vec<u8>>>,
            zbp: Vec<u32>,
        }
        let mut precincts: Vec<Prec> = Vec::new();
        for comp in 0..hdr.ncomp {
            for bands in &res {
                for (band_idx, sb) in bands {
                    let (gw, gh) = grid_dims(sb, hdr.code_block);
                    let blocks = blocks_of(sb, hdr.code_block);
                    let n = blocks.len();
                    precincts.push(Prec {
                        comp,
                        band: sb.band,
                        band_idx: *band_idx,
                        blocks,
                        state: PrecinctState::for_decoder(gw.max(1), gh.max(1)),
                        segs: vec![Vec::new(); n],
                        zbp: vec![0; n],
                    });
                }
            }
        }

        let decode_layers = self
            .max_layers
            .map_or(hdr.n_layers, |m| m.min(hdr.n_layers));
        for layer in 0..hdr.n_layers {
            for prec in precincts.iter_mut() {
                if prec.blocks.is_empty() {
                    continue;
                }
                let hlen = match body.get(cursor..cursor.saturating_add(2)) {
                    Some(&[a, b]) => u16::from_be_bytes([a, b]) as usize,
                    _ => return Err(CodecError::Parse("truncated packet length".into())),
                };
                cursor = cursor.saturating_add(2);
                let header = cursor
                    .checked_add(hlen)
                    .and_then(|end| body.get(cursor..end))
                    .ok_or_else(|| CodecError::Parse("truncated packet header".into()))?;
                cursor = cursor.saturating_add(hlen);
                let (results, _) = decode_packet(&mut prec.state, layer, header)?;
                for (b, resu) in results.iter().enumerate() {
                    for &len in &resu.seg_lens {
                        // A header may claim any 32-bit length; the segment
                        // must actually be present in the body.
                        let seg = cursor
                            .checked_add(len)
                            .and_then(|end| body.get(cursor..end))
                            .ok_or_else(|| CodecError::Parse("truncated pass segment".into()))?;
                        if layer < decode_layers {
                            if let Some(slot) = prec.segs.get_mut(b) {
                                slot.push(seg.to_vec());
                            }
                        }
                        cursor = cursor.saturating_add(len);
                    }
                    if resu.new_passes > 0 {
                        if let Some(slot) = prec.zbp.get_mut(b) {
                            *slot = resu.zero_bitplanes;
                        }
                    }
                }
            }
        }
        report.stages.add(stage::TIER2, t0.elapsed());

        // --- tier-1 decoding -------------------------------------------------
        let t0 = Instant::now();
        struct DecJob<'a> {
            comp: usize,
            geom: crate::blocks::BlockGeom,
            ctx: pj2k_ebcot::BandCtx,
            msb: u8,
            segs: &'a [Vec<u8>],
        }
        let mut jobs: Vec<DecJob> = Vec::new();
        for prec in &precincts {
            let ceiling = kmax
                .get(
                    prec.comp
                        .saturating_mul(nbands)
                        .saturating_add(prec.band_idx),
                )
                .copied()
                .unwrap_or(0);
            for (b, geom) in prec.blocks.iter().enumerate() {
                let segs = prec.segs.get(b).map(Vec::as_slice).unwrap_or(&[]);
                if segs.is_empty() {
                    continue;
                }
                let zbp = prec.zbp.get(b).copied().unwrap_or(0);
                if zbp > u32::from(ceiling) {
                    return Err(CodecError::Invalid(format!(
                        "zero bitplanes {zbp} exceed band ceiling {ceiling}"
                    )));
                }
                // AUDIT(block): `zbp <= ceiling <= MAX_PLANES` was just
                // checked, so the subtraction cannot wrap and `msb >= 1`
                // holds in the max_passes arm.
                #[allow(clippy::arithmetic_side_effects)]
                let msb = ceiling - zbp as u8;
                let max_passes = if msb == 0 {
                    0
                } else {
                    // AUDIT(block): `msb >= 1` in this arm; see above.
                    #[allow(clippy::arithmetic_side_effects)]
                    let mp = 1 + 3 * (usize::from(msb) - 1);
                    mp
                };
                if segs.len() > max_passes {
                    return Err(CodecError::Invalid(format!(
                        "{} passes exceed the {max_passes} the plane structure admits",
                        segs.len()
                    )));
                }
                jobs.push(DecJob {
                    comp: prec.comp,
                    geom: *geom,
                    ctx: band_ctx(prec.band),
                    msb,
                    segs,
                });
            }
        }
        report.num_blocks = report.num_blocks.saturating_add(jobs.len());
        let decode_one = |j: &DecJob| -> Result<Vec<i32>, pj2k_ebcot::DecodeError> {
            let refs: Vec<&[u8]> = j.segs.iter().map(|s| s.as_slice()).collect();
            decode_block_with(j.geom.w, j.geom.h, j.ctx, j.msb, &refs, hdr.tier1)
        };
        // The Kmax/zbp/max_passes validation above makes these block decodes
        // infallible in practice, but the error path is still propagated —
        // the tier-1 decoder is its own line of defense.
        let attempted: Vec<Result<Vec<i32>, pj2k_ebcot::DecodeError>> = match self.parallel {
            ParallelMode::Sequential => jobs.iter().map(decode_one).collect(),
            ParallelMode::WorkerPool { workers } => pool_map(
                jobs.len(),
                workers.max(1),
                self.tier1_schedule,
                // AUDIT(block): pool_map hands out indices `< jobs.len()`.
                #[allow(clippy::indexing_slicing)]
                |i| decode_one(&jobs[i]),
            ),
            ParallelMode::Rayon { .. } => jobs.par_iter().map(decode_one).collect(),
        };
        let mut decoded: Vec<Vec<i32>> = Vec::with_capacity(attempted.len());
        for a in attempted {
            decoded.push(a?);
        }
        let mut planes_q: Vec<Plane<i32>> = (0..hdr.ncomp).map(|_| Plane::new(w, h)).collect();
        // AUDIT(block): job geometry comes from `blocks_of` over the tile's
        // own decomposition, so every row range lies inside the `w x h`
        // plane, each `coeffs` has exactly `geom.w * geom.h` elements
        // (tier-1 contract), and `comp < ncomp` by construction. Untrusted
        // bytes cannot reach any of these indices.
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        for (j, coeffs) in jobs.iter().zip(&decoded) {
            let plane = &mut planes_q[j.comp];
            for dy in 0..j.geom.h {
                let row = &coeffs[dy * j.geom.w..(dy + 1) * j.geom.w];
                plane.row_mut(j.geom.y0 + dy)[j.geom.x0..j.geom.x0 + j.geom.w].copy_from_slice(row);
            }
        }
        // --- inverse ROI scaling ---------------------------------------------
        crate::roi::undo_roi_shift(&mut planes_q, roi_s, roi_d);
        report.stages.add(stage::TIER1, t0.elapsed());

        // --- dequantization ----------------------------------------------------
        let t0 = Instant::now();
        let mut planes_f: Vec<Plane<f32>> = Vec::new();
        if !reversible {
            for q in &planes_q {
                let mut f = Plane::<f32>::new(w, h);
                for sb in &band_list {
                    if sb.is_empty() {
                        continue;
                    }
                    let step = band_step(hdr.base_step, sb.level.max(1), sb.band);
                    dequantize_plane(q, &mut f, (sb.x0, sb.y0, sb.w, sb.h), step, &exec);
                }
                planes_f.push(f);
            }
        }
        report.stages.add(stage::QUANTIZATION, t0.elapsed());

        // --- inverse DWT ---------------------------------------------------------
        let t0 = Instant::now();
        let vstrat = VerticalStrategy::DEFAULT_STRIP;
        if reversible {
            for q in planes_q.iter_mut() {
                let stats = inverse_53_with(
                    q,
                    hdr.levels,
                    vstrat,
                    LiftingMode::PerStep,
                    self.simd,
                    &exec,
                );
                report.dwt.merge(&stats);
            }
        } else {
            for f in planes_f.iter_mut() {
                let stats = inverse_97_with(
                    f,
                    hdr.levels,
                    vstrat,
                    LiftingMode::PerStep,
                    self.simd,
                    &exec,
                );
                report.dwt.merge(&stats);
            }
        }
        report.stages.add(stage::INTRA_COMPONENT, t0.elapsed());

        // --- inverse component transform + DC shift -------------------------------
        let t0 = Instant::now();
        let mut planes_out: Vec<Plane<i32>>;
        if reversible {
            if hdr.ncomp == 3 {
                // AUDIT(block): split_at_mut(1) on a 3-element vec.
                #[allow(clippy::indexing_slicing)]
                {
                    let (a, rest) = planes_q.split_at_mut(1);
                    let (b, c) = rest.split_at_mut(1);
                    rct_inverse(&mut a[0], &mut b[0], &mut c[0]);
                }
            }
            planes_out = planes_q;
        } else {
            if hdr.ncomp == 3 {
                // AUDIT(block): split_at_mut(1) on a 3-element vec.
                #[allow(clippy::indexing_slicing)]
                {
                    let (a, rest) = planes_f.split_at_mut(1);
                    let (b, c) = rest.split_at_mut(1);
                    ict_inverse(&mut a[0], &mut b[0], &mut c[0]);
                }
            }
            planes_out = Vec::with_capacity(hdr.ncomp);
            for f in &planes_f {
                planes_out.push(f.map(|v| v.round() as i32));
            }
        }
        report.stages.add(stage::INTER_COMPONENT, t0.elapsed());

        let mut img = Image::new(planes_out, hdr.bit_depth, hdr.signed);
        dc_level_shift_inverse(&mut img);
        Ok(img)
    }
}

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::config::{EncoderConfig, FilterStrategy, RateControl};
    use crate::encode::Encoder;
    use pj2k_image::metrics::{max_abs_error, psnr};
    use pj2k_image::synth;

    fn encode(img: &Image, cfg: EncoderConfig) -> Vec<u8> {
        Encoder::new(cfg).unwrap().encode(img).0
    }

    #[test]
    fn lossless_roundtrip_is_exact() {
        let img = synth::natural_gray(96, 64, 4);
        let bytes = encode(
            &img,
            EncoderConfig {
                wavelet: Wavelet::Reversible53,
                rate: RateControl::Lossless,
                levels: 4,
                ..Default::default()
            },
        );
        let (out, report) = Decoder::default().decode(&bytes).unwrap();
        assert_eq!(max_abs_error(&img, &out), 0, "lossless must be bit exact");
        assert!(report.num_blocks > 0);
    }

    #[test]
    fn lossless_rgb_roundtrip_is_exact() {
        let img = synth::natural_rgb(48, 48, 8);
        let bytes = encode(
            &img,
            EncoderConfig {
                wavelet: Wavelet::Reversible53,
                rate: RateControl::Lossless,
                levels: 3,
                ..Default::default()
            },
        );
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        assert_eq!(max_abs_error(&img, &out), 0);
    }

    #[test]
    fn lossy_roundtrip_reaches_reasonable_psnr() {
        let img = synth::natural_gray(128, 128, 6);
        let bytes = encode(
            &img,
            EncoderConfig {
                rate: RateControl::TargetBpp(vec![2.0]),
                levels: 4,
                ..Default::default()
            },
        );
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        let q = psnr(&img, &out);
        assert!(q > 30.0, "2 bpp PSNR too low: {q}");
    }

    #[test]
    fn more_bpp_means_higher_psnr() {
        let img = synth::natural_gray(128, 128, 2);
        let mut prev = 0.0;
        for bpp in [0.125, 0.5, 2.0] {
            let bytes = encode(
                &img,
                EncoderConfig {
                    rate: RateControl::TargetBpp(vec![bpp]),
                    levels: 4,
                    ..Default::default()
                },
            );
            let (out, _) = Decoder::default().decode(&bytes).unwrap();
            let q = psnr(&img, &out);
            assert!(q > prev, "bpp {bpp}: psnr {q} <= {prev}");
            prev = q;
        }
    }

    #[test]
    fn layered_stream_decodes_progressively() {
        let img = synth::natural_gray(128, 128, 12);
        let bytes = encode(
            &img,
            EncoderConfig {
                rate: RateControl::TargetBpp(vec![0.25, 1.0, 3.0]),
                levels: 4,
                ..Default::default()
            },
        );
        let mut prev = 0.0;
        for layers in 1..=3 {
            let dec = Decoder {
                max_layers: Some(layers),
                ..Default::default()
            };
            let (out, _) = dec.decode(&bytes).unwrap();
            let q = psnr(&img, &out);
            assert!(
                q >= prev - 0.01,
                "layer {layers}: psnr {q} dropped from {prev}"
            );
            prev = q;
        }
        assert!(prev > 30.0, "full-quality psnr {prev}");
    }

    #[test]
    fn tiled_roundtrip_works() {
        let img = synth::natural_gray(100, 80, 5);
        let bytes = encode(
            &img,
            EncoderConfig {
                tiles: Some((64, 64)),
                levels: 3,
                rate: RateControl::TargetBpp(vec![2.0]),
                ..Default::default()
            },
        );
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        assert_eq!(out.width(), 100);
        assert_eq!(out.height(), 80);
        assert!(psnr(&img, &out) > 28.0);
    }

    #[test]
    fn parallel_decoding_matches_sequential() {
        let img = synth::natural_gray(96, 96, 3);
        let bytes = encode(
            &img,
            EncoderConfig {
                levels: 3,
                ..Default::default()
            },
        );
        let (a, _) = Decoder::default().decode(&bytes).unwrap();
        for parallel in [
            ParallelMode::WorkerPool { workers: 3 },
            ParallelMode::Rayon { workers: 2 },
        ] {
            let (b, _) = Decoder {
                parallel,
                ..Default::default()
            }
            .decode(&bytes)
            .unwrap();
            assert_eq!(a, b, "{parallel:?}");
        }
    }

    #[test]
    fn decode_schedules_bit_identical() {
        // The decoder-side tier-1 schedule knob must never change the
        // image, only the work distribution.
        let img = synth::natural_gray(96, 96, 7);
        let bytes = encode(
            &img,
            EncoderConfig {
                levels: 3,
                ..Default::default()
            },
        );
        let (a, _) = Decoder::default().decode(&bytes).unwrap();
        for schedule in [
            Schedule::StaggeredRoundRobin,
            Schedule::Dynamic { chunk: 1 },
            Schedule::Dynamic { chunk: 4 },
        ] {
            let dec = Decoder {
                parallel: ParallelMode::WorkerPool { workers: 3 },
                tier1_schedule: schedule,
                ..Default::default()
            };
            let (b, _) = dec.decode(&bytes).unwrap();
            assert_eq!(a, b, "{schedule:?}");
        }
    }

    #[test]
    fn decode_simd_tiers_bit_identical() {
        use crate::config::SimdTier;
        // Decoding an encoder-produced stream must be bit-identical under
        // every SIMD tier, both wavelet paths.
        for (wavelet, rate) in [
            (Wavelet::Reversible53, RateControl::Lossless),
            (Wavelet::Irreversible97, RateControl::TargetBpp(vec![2.0])),
        ] {
            let img = synth::natural_gray(80, 56, 9);
            let bytes = encode(
                &img,
                EncoderConfig {
                    wavelet,
                    rate,
                    levels: 3,
                    ..Default::default()
                },
            );
            let scalar_dec = Decoder {
                simd: SimdMode::Scalar,
                ..Default::default()
            };
            let (a, _) = scalar_dec.decode(&bytes).unwrap();
            let mut modes = vec![SimdMode::Auto];
            for tier in [SimdTier::Portable, SimdTier::Sse2, SimdTier::Avx2] {
                if tier.is_supported() {
                    modes.push(SimdMode::Forced(tier));
                }
            }
            for mode in modes {
                let dec = Decoder {
                    simd: mode,
                    ..Default::default()
                };
                let (b, _) = dec.decode(&bytes).unwrap();
                assert_eq!(a, b, "{wavelet:?} {mode:?}");
            }
        }
    }

    #[test]
    fn whole_codec_scalar_vs_auto_bit_identical() {
        // Forced-scalar and auto-dispatched SIMD encoders must emit the
        // same codestream byte for byte, and the decoded images must
        // match regardless of which side used SIMD.
        let img = synth::natural_gray(96, 64, 11);
        let mk = |simd| {
            encode(
                &img,
                EncoderConfig {
                    levels: 3,
                    filter: FilterStrategy::Strip,
                    simd,
                    ..Default::default()
                },
            )
        };
        let scalar_stream = mk(SimdMode::Scalar);
        let auto_stream = mk(SimdMode::Auto);
        assert_eq!(scalar_stream, auto_stream, "codestreams must be identical");
        let (a, _) = Decoder {
            simd: SimdMode::Scalar,
            ..Default::default()
        }
        .decode(&scalar_stream)
        .unwrap();
        let (b, _) = Decoder::default().decode(&auto_stream).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn whole_codec_reference_vs_bitplane_bit_identical() {
        // The Tier-1 engine knob must never change the codestream: the
        // reference flag-grid coder and the packed bitplane coder have to
        // emit the same bytes, across coding styles and parallel modes.
        use crate::config::{Tier1Engine, Tier1Options};
        let img = synth::natural_gray(96, 64, 21);
        for tier1 in [
            Tier1Options::default(),
            Tier1Options {
                stripe_causal: true,
                reset_contexts: false,
                bypass: true,
            },
        ] {
            let mk = |tier1_engine, parallel| {
                encode(
                    &img,
                    EncoderConfig {
                        levels: 3,
                        tier1,
                        tier1_engine,
                        parallel,
                        ..Default::default()
                    },
                )
            };
            let reference = mk(Tier1Engine::Reference, ParallelMode::Sequential);
            for parallel in [
                ParallelMode::Sequential,
                ParallelMode::WorkerPool { workers: 3 },
            ] {
                let bitplane = mk(Tier1Engine::Bitplane, parallel);
                assert_eq!(
                    reference, bitplane,
                    "engines diverged: {tier1:?} {parallel:?}"
                );
            }
            let (a, _) = Decoder::default().decode(&reference).unwrap();
            let (b, _) = Decoder::default()
                .decode(&mk(Tier1Engine::Bitplane, ParallelMode::Sequential))
                .unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn padded_width_stream_decodes_identically() {
        let img = synth::natural_gray(128, 128, 14);
        let cfg_naive = EncoderConfig {
            levels: 3,
            ..Default::default()
        };
        let cfg_padded = EncoderConfig {
            levels: 3,
            filter: FilterStrategy::PaddedWidth,
            ..Default::default()
        };
        let a = encode(&img, cfg_naive);
        let b = encode(&img, cfg_padded);
        assert_eq!(a, b);
    }

    #[test]
    fn garbage_input_is_rejected_not_panicking() {
        assert!(Decoder::default().decode(&[]).is_err());
        assert!(Decoder::default().decode(&[0x00, 0x11, 0x22]).is_err());
        assert!(Decoder::default().decode(&[0xFF, 0x4F]).is_err());
        // SOC then garbage
        let mut v = vec![0xFF, 0x4F];
        v.extend_from_slice(&[0xFF; 32]);
        assert!(Decoder::default().decode(&v).is_err());
    }

    #[test]
    fn parse_errors_carry_marker_and_offset() {
        // Missing SOC: the error names the marker found and where.
        let err = Decoder::default().decode(&[0x00, 0x11]).unwrap_err();
        match err {
            CodecError::Codestream(pe) => {
                assert_eq!(pe.offset(), 0);
                assert_eq!(pe.marker(), Some(0x0011));
            }
            other => panic!("expected Codestream error, got {other:?}"),
        }
    }

    #[test]
    fn tiny_stream_claiming_huge_tiles_is_rejected_cheaply() {
        // SIZ claims the maximal pixel budget with 1x1 tiles; the stream
        // then ends. The decoder must fail on the missing first SOT without
        // reserving hundreds of millions of tile slots.
        let mut w = pj2k_tier2::codestream::MarkerWriter::new();
        w.marker(codestream::SOC);
        let mut p = pj2k_tier2::codestream::PayloadWriter::new();
        p.u32(16384);
        p.u32(16384);
        p.u8(1);
        p.u8(8);
        p.u8(0);
        p.u32(1); // 1x1 tiles => 2^28 of them
        p.u32(1);
        w.segment(codestream::SIZ, &p.finish());
        let mut p = pj2k_tier2::codestream::PayloadWriter::new();
        p.u8(0); // 5/3
        p.u8(2);
        p.u16(64);
        p.u16(64);
        p.u16(1);
        p.u8(0);
        w.segment(codestream::COD, &p.finish());
        let mut p = pj2k_tier2::codestream::PayloadWriter::new();
        p.f64(0.5);
        w.segment(codestream::QCD, &p.finish());
        let bytes = w.finish();
        assert!(matches!(
            Decoder::default().decode(&bytes),
            Err(CodecError::Codestream(_))
        ));
    }

    #[test]
    fn tiny_stream_claiming_many_blocks_is_rejected_before_allocation() {
        // A maximal image with minimal 4x4 code-blocks wants state for
        // 2^24 blocks; the block budget must reject it as soon as the tile
        // is entered, long before per-block state exists.
        let mut w = pj2k_tier2::codestream::MarkerWriter::new();
        w.marker(codestream::SOC);
        let mut p = pj2k_tier2::codestream::PayloadWriter::new();
        p.u32(16384);
        p.u32(16384);
        p.u8(1);
        p.u8(8);
        p.u8(0);
        p.u32(0); // untiled
        p.u32(0);
        w.segment(codestream::SIZ, &p.finish());
        let mut p = pj2k_tier2::codestream::PayloadWriter::new();
        p.u8(0);
        p.u8(0); // no decomposition: one LL band
        p.u16(4); // 4x4 blocks
        p.u16(4);
        p.u16(1);
        p.u8(0);
        w.segment(codestream::COD, &p.finish());
        let mut p = pj2k_tier2::codestream::PayloadWriter::new();
        p.f64(0.5);
        w.segment(codestream::QCD, &p.finish());
        // One tile-part with an empty body: tile parsing must fail on the
        // block budget, not by allocating gigabytes first.
        let mut p = pj2k_tier2::codestream::PayloadWriter::new();
        p.u32(0);
        p.u32(0);
        w.segment(codestream::SOT, &p.finish());
        w.marker(codestream::SOD);
        w.marker(codestream::EOC);
        let bytes = w.finish();
        match Decoder::default().decode(&bytes) {
            Err(CodecError::Invalid(m)) => {
                assert!(m.contains("code-blocks"), "unexpected message: {m}")
            }
            other => panic!("expected block-budget rejection, got {other:?}"),
        }
    }

    #[test]
    fn truncating_every_prefix_never_panics() {
        let img = synth::natural_gray(48, 48, 1);
        let bytes = encode(
            &img,
            EncoderConfig {
                levels: 2,
                ..Default::default()
            },
        );
        for cut in (0..bytes.len()).step_by(7) {
            let _ = Decoder::default().decode(&bytes[..cut]);
        }
    }
}
