//! The decoding pipeline (mirror of [`crate::encode`]).
//!
//! Everything in this module runs against untrusted bytes (DESIGN.md §9):
//! parse failures carry marker/offset context through the structured
//! [`CodecError`] hierarchy, every allocation derived from header fields is
//! budget-capped *before* it happens, and all body reads are bounds-checked
//! `get`s — a malformed or truncated stream must yield `Err`, never a
//! panic or an out-of-memory abort.

#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

use crate::blocks::{band_ctx, blocks_of, grid_dims, indexed_resolutions};
use crate::config::{DecodeStagePolicy, ParallelMode, StageOverlap};
use crate::quant::{band_step, dequantize_plane, dequantize_value};
use crate::report::stage;
use pj2k_dwt::{
    inverse_53_level, inverse_53_with, inverse_97_level, inverse_97_with, Decomposition, DwtStats,
    LiftingMode, SimdMode, Subband, VerticalStrategy, Wavelet,
};
use pj2k_ebcot::{decode_block_with, BlockDecoderScratch, Tier1Options};
use pj2k_image::tile::TileGrid;
use pj2k_image::transform::{dc_level_shift_inverse, ict_inverse, rct_inverse};
use pj2k_image::{Image, Plane};
use pj2k_parutil::{
    pipeline_overlap_with_state, pool_map_with_state, Exec, PipelineQueue, Schedule, SendPtr,
    StageTimes,
};
use pj2k_tier2::codestream::{self, MarkerReader, ParseError, PayloadReader};
use pj2k_tier2::{decode_packet, PacketError, PrecinctState};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Largest number of code-blocks a single tile may instantiate decoder
/// state for. Per-block state (tag trees, Lblock counters, segment lists)
/// costs on the order of 100 bytes, so this bounds adversarial headers —
/// tiny streams claiming huge dimensions with minimal code-blocks — to a
/// modest worst-case allocation instead of multiple GiB.
const MAX_BLOCKS_PER_TILE: usize = 1 << 20;

/// Decoder-side failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// Malformed marker-segment container; carries the failing marker code
    /// and byte offset.
    Codestream(ParseError),
    /// Malformed packet header inside a tile body.
    Packet(PacketError),
    /// Inconsistent tier-1 block parameters.
    Tier1(pj2k_ebcot::DecodeError),
    /// Malformed tile body outside the marker layer.
    Parse(String),
    /// Structurally valid but semantically impossible stream.
    Invalid(String),
    /// Failed to acquire process resources (e.g. thread-pool
    /// construction) — a property of the host environment and the
    /// caller's configuration, never of the input bytes.
    Resource(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Codestream(e) => write!(f, "codestream error: {e}"),
            CodecError::Packet(e) => write!(f, "packet error: {e}"),
            CodecError::Tier1(e) => write!(f, "tier-1 error: {e}"),
            CodecError::Parse(m) => write!(f, "parse error: {m}"),
            CodecError::Invalid(m) => write!(f, "invalid codestream: {m}"),
            CodecError::Resource(m) => write!(f, "resource error: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

impl From<ParseError> for CodecError {
    fn from(e: ParseError) -> Self {
        CodecError::Codestream(e)
    }
}

impl From<PacketError> for CodecError {
    fn from(e: PacketError) -> Self {
        CodecError::Packet(e)
    }
}

impl From<pj2k_ebcot::DecodeError> for CodecError {
    fn from(e: pj2k_ebcot::DecodeError) -> Self {
        CodecError::Tier1(e)
    }
}

/// Decode-side run report.
#[derive(Debug, Clone, Default)]
pub struct DecodeReport {
    /// Wall-clock per pipeline stage.
    pub stages: StageTimes,
    /// Inverse-DWT filtering breakdown.
    pub dwt: DwtStats,
    /// Number of code-blocks with coded data.
    pub num_blocks: usize,
}

/// pj2k codestream decoder.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// Parallel execution of the inverse DWT and Tier-1 decoding.
    pub parallel: ParallelMode,
    /// Decode only the first `n` quality layers (progressive decoding);
    /// `None` decodes everything present.
    pub max_layers: Option<usize>,
    /// How [`ParallelMode::WorkerPool`] hands code-blocks to its workers
    /// during Tier-1 decoding — mirror of the encoder's knob. The decoded
    /// image is identical under every schedule; only the load balance
    /// changes. The pipelined decoder drains its block queue in arrival
    /// order (the work-stealing equivalent of `Schedule::Dynamic` with
    /// chunk 1); the knob then only shapes the barriered fallback.
    pub tier1_schedule: Schedule,
    /// SIMD tier for the inverse lifting kernels (bit-identical output
    /// across tiers; see [`SimdMode`]).
    pub simd: SimdMode,
    /// Stage overlap, mirroring the encoder's knob: `Barriered` finishes
    /// all Tier-1 block decoding before the inverse DWT starts;
    /// `Pipelined` streams decoded-block jobs out of the Tier-2 parser as
    /// soon as each precinct's segment lengths are known and starts each
    /// inverse-DWT level once all of its bands are reassembled. Output is
    /// bit-identical either way. Streams carrying an ROI shift and
    /// [`ParallelMode::Rayon`] fall back to the barriered path.
    pub overlap: StageOverlap,
    /// How workers are split between Tier-1 draining and the inverse DWT
    /// at each level boundary of the pipelined decoder (see
    /// [`DecodeStagePolicy`]); also lets the cost model sharpen a coarse
    /// `Schedule::Dynamic` chunk on the barriered path. Never affects
    /// decoded pixels.
    pub stage_policy: DecodeStagePolicy,
}

impl Default for Decoder {
    fn default() -> Self {
        Self {
            parallel: ParallelMode::Sequential,
            max_layers: None,
            tier1_schedule: Schedule::StaggeredRoundRobin,
            simd: SimdMode::Auto,
            overlap: StageOverlap::Barriered,
            stage_policy: DecodeStagePolicy::Auto,
        }
    }
}

/// Stream-level parameters parsed from the main header.
struct MainHeader {
    ncomp: usize,
    bit_depth: u8,
    signed: bool,
    tiles: Option<(usize, usize)>,
    wavelet: Wavelet,
    levels: u8,
    code_block: (usize, usize),
    n_layers: usize,
    base_step: f64,
    tier1: Tier1Options,
}

/// Geometry and packet-parsing context of one tile, shared by the
/// barriered and pipelined decode paths.
struct TileCtx<'a> {
    body: &'a [u8],
    /// First body byte after the Kmax table and ROI header.
    cursor: usize,
    kmax: &'a [u8],
    roi: (u8, u8),
    decode_layers: usize,
    w: usize,
    h: usize,
}

/// One decoded-block work item: everything Tier-1 needs, owned, so the
/// Tier-2 parser can hand it to a worker the moment the block's segments
/// are final (its precinct's last decoded layer has been parsed).
struct BlockJob {
    comp: usize,
    /// Subband index in `Decomposition::subbands()` order.
    band_idx: usize,
    geom: crate::blocks::BlockGeom,
    ctx: pj2k_ebcot::BandCtx,
    msb: u8,
    /// Coded segments gathered across the decoded layers.
    segs: Vec<Vec<u8>>,
    /// Tier-2 cost estimate; see [`job_cost`].
    cost: u64,
}

/// Per-subband geometry the pipelined decoder scatters decoded blocks
/// into.
struct BandMeta {
    x0: usize,
    y0: usize,
    w: usize,
    h: usize,
    level: u8,
    /// Dequantization step (lossy path only).
    step: f64,
}

/// Tier-1 work-cost estimate for one code-block, from data the Tier-2
/// headers alone provide: coded bytes scale the MQ-decode work, the pass
/// count scales the per-pass scan overhead. Only relative magnitudes
/// matter — the estimate drives load-balancing heuristics, never output.
fn job_cost(seg_bytes: usize, passes: usize) -> u64 {
    (seg_bytes.max(1) as u64).saturating_mul(passes.max(1) as u64)
}

/// Workers to hand the inverse DWT at a level boundary of the pipelined
/// decoder, given how much Tier-1 cost is still queued or in flight.
///
/// `Static` keeps the DWT on the driving thread until Tier-1 has fully
/// drained; `CostWeighted` (and a resolved `Auto`) gives Tier-1 a share
/// of the `p` workers proportional to its remaining cost fraction and
/// the DWT the rest, at least one each. Purely a scheduling choice — the
/// synthesized samples are identical for any lane count.
fn dwt_lanes(policy: DecodeStagePolicy, p: usize, remaining_cost: u64, total_cost: u64) -> usize {
    let p = p.max(1);
    match policy {
        DecodeStagePolicy::Static => {
            if remaining_cost > 0 {
                1
            } else {
                p
            }
        }
        DecodeStagePolicy::Auto | DecodeStagePolicy::CostWeighted => {
            if remaining_cost == 0 || total_cost == 0 {
                return p;
            }
            let tier1 = (u128::from(remaining_cost).saturating_mul(p as u128))
                .div_ceil(u128::from(total_cost.max(remaining_cost)))
                as usize;
            p.saturating_sub(tier1).max(1)
        }
    }
}

/// Sharpen a coarse dynamic chunk on the barriered path when the Tier-2
/// cost estimates reveal a skewed block population: one huge block stuck
/// at the end of a chunk serializes the tail, so fall back to chunk 1.
/// The decoded image is schedule-invariant, so this only moves work.
fn effective_schedule(policy: DecodeStagePolicy, schedule: Schedule, costs: &[u64]) -> Schedule {
    if policy != DecodeStagePolicy::CostWeighted && policy != DecodeStagePolicy::Auto {
        return schedule;
    }
    let Schedule::Dynamic { chunk } = schedule else {
        return schedule;
    };
    if chunk <= 1 || costs.is_empty() {
        return schedule;
    }
    let max = costs.iter().copied().max().unwrap_or(0);
    let sum: u64 = costs.iter().fold(0u64, |a, &c| a.saturating_add(c));
    // AUDIT: unreachable-from-input — the `costs.is_empty()` early return
    // above makes the divisor nonzero regardless of stream contents.
    #[allow(clippy::arithmetic_side_effects)]
    let mean = (sum / costs.len() as u64).max(1);
    if max > mean.saturating_mul(4) {
        Schedule::Dynamic { chunk: 1 }
    } else {
        schedule
    }
}

/// Where [`parse_tile_blocks`] delivers finalized block jobs.
trait JobSink {
    /// A block whose segments are final.
    fn push(&mut self, job: BlockJob);
    /// Every block of one precinct (one `(comp, band)` pair) has been
    /// pushed; `level` is the band's decomposition level.
    fn precinct_done(&mut self, _comp: usize, _level: u8) {}
}

/// Collects jobs in precinct order — the barriered path's sink.
#[derive(Default)]
struct CollectSink {
    jobs: Vec<BlockJob>,
}

impl JobSink for CollectSink {
    // AUDIT(hot): one amortized Vec push per finalized block — O(blocks),
    // not per-sample work.
    fn push(&mut self, job: BlockJob) {
        self.jobs.push(job);
    }
}

/// Completion tracking for the pipelined decoder: one slot per
/// `(component, decomposition level)` pair. Workers count finished blocks
/// into `done`; the parser publishes `expected` per slot as soon as every
/// precinct feeding it has been finalized; the driving thread waits for
/// `done == expected` before synthesizing that level. Any stage parks its
/// first error here, which wakes every waiter into a drain-and-bail mode
/// — malformed input must surface as `Err`, never as a hung worker.
struct Gate {
    m: Mutex<GateState>,
    cv: Condvar,
}

struct GateState {
    done: Vec<usize>,
    expected: Vec<Option<usize>>,
    error: Option<CodecError>,
    /// The Tier-2 parser has run to completion (successfully or not) —
    /// trailing-layer parse errors must fail the decode even after every
    /// decoded layer's blocks are in.
    parse_done: bool,
}

impl Gate {
    // AUDIT(hot): one Mutex/Condvar and two slot Vecs per tile —
    // setup-time, sized by (components x levels), not by samples.
    fn new(slots: usize) -> Self {
        Self {
            m: Mutex::new(GateState {
                done: vec![0; slots],
                expected: vec![None; slots],
                error: None,
                parse_done: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Poison-tolerant lock: a panicking worker must not turn every other
    /// waiter's `unwrap` into a second panic while the first unwinds.
    // AUDIT(hot): one short critical section per block/precinct event —
    // O(blocks) lock traffic in total, never inside the sample loops.
    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record the first error and wake all waiters.
    // AUDIT(hot): cold error path — runs at most once per decode.
    fn fail(&self, e: CodecError) {
        let mut st = self.lock();
        if st.error.is_none() {
            st.error = Some(e);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// One more block of `slot` is fully scattered.
    // AUDIT(hot): one uncontended-in-the-common-case lock acquisition per
    // *code-block* completion — amortized over the thousands of per-sample
    // operations the block's decode just performed. The condvar is how the
    // driving thread learns a DWT level is ready.
    fn block_done(&self, slot: usize) {
        let mut st = self.lock();
        if let Some(d) = st.done.get_mut(slot) {
            *d = d.saturating_add(1);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Publish the expected block count of `slot`.
    // AUDIT(hot): one lock + notify per finalized precinct slot —
    // O(precincts), not per-sample.
    fn publish(&self, slot: usize, expected: usize) {
        let mut st = self.lock();
        if let Some(e) = st.expected.get_mut(slot) {
            *e = Some(expected);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Parsing finished (with or without error).
    // AUDIT(hot): once per tile, when the Tier-2 parser returns.
    fn finish_parse(&self) {
        let mut st = self.lock();
        st.parse_done = true;
        drop(st);
        self.cv.notify_all();
    }

    /// Block until every expected block of `slot` is done, or any stage
    /// has failed.
    // AUDIT(hot): driver-side blocking wait by design, once per DWT
    // level; the error clone happens only on the cold failure path.
    fn wait_slot(&self, slot: usize) -> Result<(), CodecError> {
        let mut st = self.lock();
        loop {
            if let Some(e) = &st.error {
                return Err(e.clone());
            }
            let done = st.done.get(slot).copied().unwrap_or(0);
            if st.expected.get(slot).copied().flatten() == Some(done) {
                return Ok(());
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Block until the Tier-2 parser has fully completed, then surface
    /// any parked error.
    // AUDIT(hot): driver-side blocking wait, once per tile; the error
    // clone happens only on the cold failure path.
    fn wait_parse_done(&self) -> Result<(), CodecError> {
        let mut st = self.lock();
        loop {
            if let Some(e) = &st.error {
                return Err(e.clone());
            }
            if st.parse_done {
                return Ok(());
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Streams jobs into the pipelined decoder's queue and publishes per-slot
/// expected counts through the [`Gate`] — the pipelined path's sink.
struct QueueSink<'a> {
    queue: &'a PipelineQueue<BlockJob>,
    gate: &'a Gate,
    /// Band level per subband index.
    band_levels: &'a [u8],
    levels: usize,
    /// Precincts not yet finalized, per gate slot.
    open_precincts: Vec<usize>,
    /// Jobs pushed so far, per gate slot.
    staged: Vec<usize>,
    total_cost: &'a AtomicU64,
    remaining_cost: &'a AtomicU64,
    next: usize,
    n_jobs: usize,
}

impl JobSink for QueueSink<'_> {
    fn push(&mut self, job: BlockJob) {
        let level = self.band_levels.get(job.band_idx).copied().unwrap_or(0);
        let slot = job
            .comp
            .saturating_mul(self.levels.saturating_add(1))
            .saturating_add(usize::from(level));
        if let Some(s) = self.staged.get_mut(slot) {
            *s = s.saturating_add(1);
        }
        self.total_cost.fetch_add(job.cost, Ordering::Relaxed);
        self.remaining_cost.fetch_add(job.cost, Ordering::Relaxed);
        self.n_jobs = self.n_jobs.saturating_add(1);
        self.queue.send(self.next, job);
        self.next = self.next.saturating_add(1);
    }

    fn precinct_done(&mut self, comp: usize, level: u8) {
        let slot = comp
            .saturating_mul(self.levels.saturating_add(1))
            .saturating_add(usize::from(level));
        let open = match self.open_precincts.get_mut(slot) {
            Some(o) => {
                *o = o.saturating_sub(1);
                *o
            }
            None => return,
        };
        if open == 0 {
            let expected = self.staged.get(slot).copied().unwrap_or(0);
            self.gate.publish(slot, expected);
        }
    }
}

/// Per-worker scratch of the pipelined Tier-1 stage: the flag-grid /
/// magnitude scratch plus a reusable output buffer, so the steady-state
/// per-block decode allocates nothing.
#[derive(Default)]
struct WorkerState {
    scratch: BlockDecoderScratch,
    out: Vec<i32>,
}

/// Copy every reassembled band of decomposition level `lvl` (component
/// `comp`) from its pipeline buffer into the Mallat-layout plane. Must
/// only be called after the level's gate slot has passed.
#[allow(clippy::too_many_arguments)]
// AUDIT(fn): `comp < ncomp` bounds the plane and buffer indices, band
// geometry comes from the tile's own `Decomposition`, so every row span
// lies inside the `w x h` plane — untrusted bytes reach none of these
// indices.
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
fn copy_bands_level(
    metas: &[BandMeta],
    nbands: usize,
    comp: usize,
    lvl: usize,
    reversible: bool,
    ptrs_i: &[SendPtr<i32>],
    ptrs_f: &[SendPtr<f32>],
    planes_q: &mut [Plane<i32>],
    planes_f: &mut [Plane<f32>],
) {
    for (bi, meta) in metas.iter().enumerate() {
        if usize::from(meta.level) != lvl || meta.w == 0 || meta.h == 0 {
            continue;
        }
        let buf = comp * nbands + bi;
        let n = meta.w * meta.h;
        if reversible {
            // SAFETY: the caller waited on this level's gate slot, so every
            // writer of this buffer has completed and synchronized through
            // the gate mutex; workers never touch a buffer after its last
            // block is done, leaving this thread the sole accessor.
            // AUDIT(alias): read-only view after the gate's happens-before;
            // no live writer aliases this buffer once its slot passed.
            let src = unsafe { std::slice::from_raw_parts(ptrs_i[buf].0, n) };
            let plane = &mut planes_q[comp];
            for dy in 0..meta.h {
                plane.row_mut(meta.y0 + dy)[meta.x0..meta.x0 + meta.w]
                    .copy_from_slice(&src[dy * meta.w..(dy + 1) * meta.w]);
            }
        } else {
            // SAFETY: as above.
            // AUDIT(alias): as above — sole accessor after the gate slot.
            let src = unsafe { std::slice::from_raw_parts(ptrs_f[buf].0, n) };
            let plane = &mut planes_f[comp];
            for dy in 0..meta.h {
                plane.row_mut(meta.y0 + dy)[meta.x0..meta.x0 + meta.w]
                    .copy_from_slice(&src[dy * meta.w..(dy + 1) * meta.w]);
            }
        }
    }
}

/// Parse the packet stream of one tile body and hand every code-block
/// with coded data to `sink`, owned, the moment its segments are final —
/// i.e. while parsing the precinct's packet of the last *decoded* layer
/// (`decode_layers - 1`; zero-bit-plane counts are learned at first
/// inclusion and never change afterwards, so nothing a later layer
/// carries can alter the job). Layers past `decode_layers` are still
/// parsed to validate the stream. Validation and error messages are
/// identical for every sink.
// AUDIT(hot): per-precinct parse state plus one owned segment Vec per
// block, each built exactly once and handed off to the Tier-1 stage;
// the format! sites are cold malformed-input error paths.
fn parse_tile_blocks(
    hdr: &MainHeader,
    ctx: &TileCtx<'_>,
    res: &[Vec<(usize, Subband)>],
    nbands: usize,
    sink: &mut dyn JobSink,
) -> Result<(), CodecError> {
    let body = ctx.body;
    let mut cursor = ctx.cursor;

    // Per-precinct state, mirroring the encoder's ordering.
    struct Prec {
        comp: usize,
        band: pj2k_dwt::Band,
        /// Index of the subband in `Decomposition::subbands()` order
        /// (the Kmax-table key).
        band_idx: usize,
        level: u8,
        blocks: Vec<crate::blocks::BlockGeom>,
        state: PrecinctState,
        /// Per block: segments gathered across layers.
        segs: Vec<Vec<Vec<u8>>>,
        zbp: Vec<u32>,
    }
    let mut precincts: Vec<Prec> = Vec::new();
    for comp in 0..hdr.ncomp {
        for bands in res {
            for (band_idx, sb) in bands {
                let (gw, gh) = grid_dims(sb, hdr.code_block);
                let blocks = blocks_of(sb, hdr.code_block);
                let n = blocks.len();
                if n == 0 {
                    // Empty bands carry no packets; finalize immediately so
                    // the pipelined gate's precinct accounting still closes.
                    sink.precinct_done(comp, sb.level);
                    continue;
                }
                precincts.push(Prec {
                    comp,
                    band: sb.band,
                    band_idx: *band_idx,
                    level: sb.level,
                    blocks,
                    state: PrecinctState::for_decoder(gw.max(1), gh.max(1)),
                    segs: vec![Vec::new(); n],
                    zbp: vec![0; n],
                });
            }
        }
    }

    let finalize_layer = ctx.decode_layers.saturating_sub(1);
    for layer in 0..hdr.n_layers {
        for prec in precincts.iter_mut() {
            let hlen = match body.get(cursor..cursor.saturating_add(2)) {
                Some(&[a, b]) => u16::from_be_bytes([a, b]) as usize,
                _ => return Err(CodecError::Parse("truncated packet length".into())),
            };
            cursor = cursor.saturating_add(2);
            let header = cursor
                .checked_add(hlen)
                .and_then(|end| body.get(cursor..end))
                .ok_or_else(|| CodecError::Parse("truncated packet header".into()))?;
            cursor = cursor.saturating_add(hlen);
            let (results, _) = decode_packet(&mut prec.state, layer, header)?;
            for (b, resu) in results.iter().enumerate() {
                for &len in &resu.seg_lens {
                    // A header may claim any 32-bit length; the segment
                    // must actually be present in the body.
                    let seg = cursor
                        .checked_add(len)
                        .and_then(|end| body.get(cursor..end))
                        .ok_or_else(|| CodecError::Parse("truncated pass segment".into()))?;
                    if layer < ctx.decode_layers {
                        if let Some(slot) = prec.segs.get_mut(b) {
                            slot.push(seg.to_vec());
                        }
                    }
                    cursor = cursor.saturating_add(len);
                }
                if resu.new_passes > 0 {
                    if let Some(slot) = prec.zbp.get_mut(b) {
                        *slot = resu.zero_bitplanes;
                    }
                }
            }
            if layer == finalize_layer {
                let ceiling = ctx
                    .kmax
                    .get(
                        prec.comp
                            .saturating_mul(nbands)
                            .saturating_add(prec.band_idx),
                    )
                    .copied()
                    .unwrap_or(0);
                for (b, geom) in prec.blocks.iter().enumerate() {
                    let segs = prec.segs.get_mut(b).map(std::mem::take).unwrap_or_default();
                    if segs.is_empty() {
                        continue;
                    }
                    let zbp = prec.zbp.get(b).copied().unwrap_or(0);
                    if zbp > u32::from(ceiling) {
                        return Err(CodecError::Invalid(format!(
                            "zero bitplanes {zbp} exceed band ceiling {ceiling}"
                        )));
                    }
                    // AUDIT(block): `zbp <= ceiling <= MAX_PLANES` was just
                    // checked, so the subtraction cannot wrap and `msb >= 1`
                    // holds in the max_passes arm.
                    #[allow(clippy::arithmetic_side_effects)]
                    let msb = ceiling - zbp as u8;
                    let max_passes = if msb == 0 {
                        0
                    } else {
                        // AUDIT(block): `msb >= 1` in this arm; see above.
                        #[allow(clippy::arithmetic_side_effects)]
                        let mp = 1 + 3 * (usize::from(msb) - 1);
                        mp
                    };
                    if segs.len() > max_passes {
                        return Err(CodecError::Invalid(format!(
                            "{} passes exceed the {max_passes} the plane structure admits",
                            segs.len()
                        )));
                    }
                    let bytes: usize = segs.iter().map(Vec::len).sum();
                    sink.push(BlockJob {
                        comp: prec.comp,
                        band_idx: prec.band_idx,
                        geom: *geom,
                        ctx: band_ctx(prec.band),
                        msb,
                        cost: job_cost(bytes, segs.len()),
                        segs,
                    });
                }
                sink.precinct_done(prec.comp, prec.level);
            }
        }
    }
    Ok(())
}

impl Decoder {
    /// Decode a pj2k codestream.
    ///
    /// # Errors
    /// Returns [`CodecError`] on malformed input.
    // AUDIT(hot): once per stream — pool construction and the resource
    // error format! are setup-time / cold.
    pub fn decode(&self, bytes: &[u8]) -> Result<(Image, DecodeReport), CodecError> {
        match self.parallel {
            ParallelMode::Rayon { workers } => {
                // AUDIT: pool construction depends on the caller's config
                // and process resources, never on the untrusted input
                // bytes; failure surfaces as `CodecError::Resource` so the
                // no-panic decode contract also covers resource
                // exhaustion.
                let pool = rayon::ThreadPoolBuilder::new()
                    .num_threads(workers.max(1))
                    .build()
                    .map_err(|e| CodecError::Resource(format!("rayon pool: {e}")))?;
                pool.install(|| self.decode_inner(bytes))
            }
            _ => self.decode_inner(bytes),
        }
    }

    // AUDIT(hot): main-header parsing runs once per stream (setup-time);
    // every format! here is a cold malformed-input error path.
    fn decode_inner(&self, bytes: &[u8]) -> Result<(Image, DecodeReport), CodecError> {
        let mut report = DecodeReport::default();
        let t0 = Instant::now();
        let mut r = MarkerReader::new(bytes);
        r.expect_marker(codestream::SOC)?;
        let siz = r.expect_segment(codestream::SIZ)?;
        let mut p = PayloadReader::new(siz);
        let width = p.u32()? as usize;
        let height = p.u32()? as usize;
        let ncomp = p.u8()? as usize;
        let bit_depth = p.u8()?;
        let signed = p.u8()? != 0;
        let tw = p.u32()? as usize;
        let th = p.u32()? as usize;
        let cod = r.expect_segment(codestream::COD)?;
        let mut p = PayloadReader::new(cod);
        let wavelet = match p.u8()? {
            0 => Wavelet::Reversible53,
            1 => Wavelet::Irreversible97,
            x => return Err(CodecError::Invalid(format!("unknown wavelet {x}"))),
        };
        let levels = p.u8()?;
        let cbw = p.u16()? as usize;
        let cbh = p.u16()? as usize;
        let n_layers = p.u16()? as usize;
        let t1flags = p.u8()?;
        if t1flags > 7 {
            return Err(CodecError::Invalid(format!(
                "unknown tier-1 flags {t1flags:#x}"
            )));
        }
        let tier1 = Tier1Options {
            stripe_causal: t1flags & 1 != 0,
            reset_contexts: t1flags & 2 != 0,
            bypass: t1flags & 4 != 0,
        };
        let qcd = r.expect_segment(codestream::QCD)?;
        let base_step = PayloadReader::new(qcd).f64()?;
        let hdr = MainHeader {
            ncomp,
            bit_depth,
            signed,
            tiles: if tw == 0 { None } else { Some((tw, th)) },
            wavelet,
            levels,
            code_block: (cbw, cbh),
            n_layers,
            base_step,
            tier1,
        };
        if width == 0 || height == 0 || ncomp == 0 {
            return Err(CodecError::Invalid("empty image".into()));
        }
        // Harden against corrupted headers: bound allocations and reject
        // geometry the encoder can never produce.
        if width.saturating_mul(height).saturating_mul(ncomp) > (1 << 28) {
            return Err(CodecError::Invalid(format!(
                "implausible image size {width}x{height}x{ncomp}"
            )));
        }
        if ncomp > 4 {
            return Err(CodecError::Invalid(format!("{ncomp} components")));
        }
        if !(1..=16).contains(&bit_depth) {
            return Err(CodecError::Invalid(format!("bit depth {bit_depth}")));
        }
        if let Some((tw, th)) = hdr.tiles {
            if tw == 0 || th == 0 {
                return Err(CodecError::Invalid("zero tile dimension".into()));
            }
        }
        if hdr.levels > 12 {
            return Err(CodecError::Invalid(format!("{} levels", hdr.levels)));
        }
        let (cbw2, cbh2) = hdr.code_block;
        if !cbw2.is_power_of_two()
            || !cbh2.is_power_of_two()
            || !(4..=1024).contains(&cbw2)
            || !(4..=1024).contains(&cbh2)
            || cbw2.saturating_mul(cbh2) > 4096
        {
            return Err(CodecError::Invalid(format!("code-block {cbw2}x{cbh2}")));
        }
        if hdr.n_layers == 0 || hdr.n_layers > 4096 {
            return Err(CodecError::Invalid(format!("{} layers", hdr.n_layers)));
        }
        if !(hdr.base_step.is_finite() && hdr.base_step > 0.0) {
            return Err(CodecError::Invalid(format!("base step {}", hdr.base_step)));
        }
        report.stages.add(stage::BITSTREAM_IO, t0.elapsed());

        let grid = match hdr.tiles {
            Some((tw, th)) => TileGrid::new(width, height, tw, th),
            None => TileGrid::single(width, height),
        };
        // No pre-reservation: a corrupt header claiming 1x1 tiles over a
        // maximal image would otherwise reserve hundreds of millions of
        // slots before the first missing SOT segment is even noticed. Grown
        // incrementally, a truncated stream fails after one tile's work.
        let mut tiles = Vec::new();
        for i in 0..grid.len() {
            let t0 = Instant::now();
            let sot = r.expect_segment(codestream::SOT)?;
            let mut p = PayloadReader::new(sot);
            let idx = p.u32()? as usize;
            if idx != i {
                return Err(CodecError::Invalid(format!("tile {idx} out of order")));
            }
            let body_len = p.u32()? as usize;
            r.expect_marker(codestream::SOD)?;
            let body = r.raw(body_len)?;
            report.stages.add(stage::BITSTREAM_IO, t0.elapsed());
            let rect = grid.rect(i);
            tiles.push(self.decode_tile(&hdr, body, rect.w, rect.h, &mut report)?);
        }
        let t0 = Instant::now();
        r.expect_marker(codestream::EOC)?;
        let mut out = pj2k_image::tile::assemble(&tiles, &grid, hdr.bit_depth, hdr.signed);
        out.clamp_to_depth();
        report.stages.add(stage::SETUP, t0.elapsed());
        Ok((out, report))
    }

    // AUDIT(hot): per-tile setup (decomposition geometry, resolution
    // index); format! sites are cold error paths.
    fn decode_tile(
        &self,
        hdr: &MainHeader,
        body: &[u8],
        w: usize,
        h: usize,
        report: &mut DecodeReport,
    ) -> Result<Image, CodecError> {
        let deco = Decomposition::new(w, h, hdr.levels);
        let res = indexed_resolutions(&deco);
        let nbands = deco.subbands().len();

        // Budget the per-block decoder state BEFORE reading the tile body or
        // allocating any of it: grid_dims is pure arithmetic over validated
        // header fields, so a hostile header claiming a huge block count is
        // rejected without touching the allocator.
        let mut total_blocks = 0usize;
        for bands in &res {
            for (_bi, sb) in bands {
                let (gw, gh) = grid_dims(sb, hdr.code_block);
                total_blocks = total_blocks.saturating_add(gw.saturating_mul(gh));
            }
        }
        total_blocks = total_blocks.saturating_mul(hdr.ncomp);
        if total_blocks > MAX_BLOCKS_PER_TILE {
            return Err(CodecError::Invalid(format!(
                "tile requires state for {total_blocks} code-blocks \
                 (cap {MAX_BLOCKS_PER_TILE})"
            )));
        }

        // --- tier-2 prologue: Kmax table and ROI header --------------------
        let t0 = Instant::now();
        // ncomp <= 4 and nbands <= 1 + 3 * levels <= 37, both validated.
        let kmax_len = hdr.ncomp.saturating_mul(nbands);
        let kmax = body
            .get(..kmax_len)
            .ok_or_else(|| CodecError::Parse("truncated Kmax table".into()))?;
        if let Some(&bad) = kmax.iter().find(|&&k| k > pj2k_ebcot::MAX_PLANES) {
            return Err(CodecError::Invalid(format!(
                "Kmax {bad} exceeds the {} coded planes the coder supports",
                pj2k_ebcot::MAX_PLANES
            )));
        }
        let mut cursor = kmax_len;
        let (roi_s, roi_d) = match body.get(cursor..cursor.saturating_add(2)) {
            Some(&[s, d]) => (s, d),
            _ => return Err(CodecError::Parse("truncated ROI header".into())),
        };
        cursor = cursor.saturating_add(2);
        if roi_s > 30 || roi_d > 30 {
            return Err(CodecError::Invalid(format!(
                "implausible ROI shifts ({roi_s}, {roi_d})"
            )));
        }
        report.stages.add(stage::TIER2, t0.elapsed());

        let ctx = TileCtx {
            body,
            cursor,
            kmax,
            roi: (roi_s, roi_d),
            decode_layers: self
                .max_layers
                .map_or(hdr.n_layers, |m| m.min(hdr.n_layers)),
            w,
            h,
        };
        // The pipelined path dequantizes per sample as blocks land in their
        // band buffers, which is only valid while no ROI shift sits between
        // Tier-1 output and dequantization; Rayon's pool has no hook for
        // the queue-draining worker loop. Both fall back to the barriered
        // path, which decodes identical pixels.
        let pipelined = self.overlap == StageOverlap::Pipelined
            && roi_s == 0
            && roi_d == 0
            && !matches!(self.parallel, ParallelMode::Rayon { .. });
        if pipelined {
            self.decode_tile_pipelined(hdr, &ctx, &deco, &res, report)
        } else {
            self.decode_tile_barriered(hdr, &ctx, &deco, &res, report)
        }
    }

    /// Classic stage-sequential tile decode: all Tier-1 blocks, then ROI
    /// undo, dequantization, and the full inverse DWT.
    // AUDIT(hot): job list and band buffers are built once per tile
    // (setup-time); the per-block decode loop reuses warm per-worker
    // scratch — bench_decode's counting-allocator probe pins the
    // steady state at zero allocations per block.
    fn decode_tile_barriered(
        &self,
        hdr: &MainHeader,
        ctx: &TileCtx<'_>,
        deco: &Decomposition,
        res: &[Vec<(usize, Subband)>],
        report: &mut DecodeReport,
    ) -> Result<Image, CodecError> {
        let exec = self.parallel.exec();
        let reversible = hdr.wavelet == Wavelet::Reversible53;
        let band_list = deco.subbands();
        let nbands = band_list.len();
        let (w, h) = (ctx.w, ctx.h);
        let (roi_s, roi_d) = ctx.roi;

        // --- tier-2: packet headers ----------------------------------------
        let t0 = Instant::now();
        let mut sink = CollectSink::default();
        parse_tile_blocks(hdr, ctx, res, nbands, &mut sink)?;
        let jobs = sink.jobs;
        report.stages.add(stage::TIER2, t0.elapsed());

        // --- tier-1 decoding -----------------------------------------------
        let t0 = Instant::now();
        report.num_blocks = report.num_blocks.saturating_add(jobs.len());
        let decode_one = |scratch: &mut BlockDecoderScratch,
                          out: &mut Vec<i32>,
                          j: &BlockJob|
         -> Result<(), pj2k_ebcot::DecodeError> {
            scratch.decode_into(j.geom.w, j.geom.h, j.ctx, j.msb, &j.segs, hdr.tier1, out)
        };
        // The Kmax/zbp/max_passes validation in the parser makes these block
        // decodes infallible in practice, but the error path is still
        // propagated — the tier-1 decoder is its own line of defense.
        let attempted: Vec<Result<Vec<i32>, pj2k_ebcot::DecodeError>> = match self.parallel {
            ParallelMode::Sequential => {
                let mut scratch = BlockDecoderScratch::new();
                jobs.iter()
                    .map(|j| {
                        let mut out = Vec::new();
                        decode_one(&mut scratch, &mut out, j).map(|()| out)
                    })
                    .collect()
            }
            ParallelMode::WorkerPool { workers } => {
                let costs: Vec<u64> = jobs.iter().map(|j| j.cost).collect();
                let schedule =
                    effective_schedule(self.stage_policy.resolve(), self.tier1_schedule, &costs);
                pool_map_with_state(
                    jobs.len(),
                    workers.max(1),
                    schedule,
                    |_| BlockDecoderScratch::new(),
                    // AUDIT(block): the pool hands out indices `< jobs.len()`.
                    #[allow(clippy::indexing_slicing)]
                    |scratch, i| {
                        let mut out = Vec::new();
                        decode_one(scratch, &mut out, &jobs[i]).map(|()| out)
                    },
                )
            }
            ParallelMode::Rayon { .. } => jobs
                .par_iter()
                .map(|j| {
                    let refs: Vec<&[u8]> = j.segs.iter().map(|s| s.as_slice()).collect();
                    decode_block_with(j.geom.w, j.geom.h, j.ctx, j.msb, &refs, hdr.tier1)
                })
                .collect(),
        };
        let mut decoded: Vec<Vec<i32>> = Vec::with_capacity(attempted.len());
        for a in attempted {
            decoded.push(a?);
        }
        let mut planes_q: Vec<Plane<i32>> = (0..hdr.ncomp).map(|_| Plane::new(w, h)).collect();
        // AUDIT(block): job geometry comes from `blocks_of` over the tile's
        // own decomposition, so every row range lies inside the `w x h`
        // plane, each `coeffs` has exactly `geom.w * geom.h` elements
        // (tier-1 contract), and `comp < ncomp` by construction. Untrusted
        // bytes cannot reach any of these indices.
        #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
        for (j, coeffs) in jobs.iter().zip(&decoded) {
            let plane = &mut planes_q[j.comp];
            for dy in 0..j.geom.h {
                let row = &coeffs[dy * j.geom.w..(dy + 1) * j.geom.w];
                plane.row_mut(j.geom.y0 + dy)[j.geom.x0..j.geom.x0 + j.geom.w].copy_from_slice(row);
            }
        }
        // --- inverse ROI scaling ---------------------------------------------
        crate::roi::undo_roi_shift(&mut planes_q, roi_s, roi_d);
        report.stages.add(stage::TIER1, t0.elapsed());

        // --- dequantization ----------------------------------------------------
        let t0 = Instant::now();
        let mut planes_f: Vec<Plane<f32>> = Vec::new();
        if !reversible {
            for q in &planes_q {
                let mut f = Plane::<f32>::new(w, h);
                for sb in &band_list {
                    if sb.is_empty() {
                        continue;
                    }
                    let step = band_step(hdr.base_step, sb.level.max(1), sb.band);
                    dequantize_plane(q, &mut f, (sb.x0, sb.y0, sb.w, sb.h), step, &exec);
                }
                planes_f.push(f);
            }
        }
        report.stages.add(stage::QUANTIZATION, t0.elapsed());

        // --- inverse DWT ---------------------------------------------------------
        let t0 = Instant::now();
        let vstrat = VerticalStrategy::DEFAULT_STRIP;
        if reversible {
            for q in planes_q.iter_mut() {
                let stats = inverse_53_with(
                    q,
                    hdr.levels,
                    vstrat,
                    LiftingMode::PerStep,
                    self.simd,
                    &exec,
                );
                report.dwt.merge(&stats);
            }
        } else {
            for f in planes_f.iter_mut() {
                let stats = inverse_97_with(
                    f,
                    hdr.levels,
                    vstrat,
                    LiftingMode::PerStep,
                    self.simd,
                    &exec,
                );
                report.dwt.merge(&stats);
            }
        }
        report.stages.add(stage::INTRA_COMPONENT, t0.elapsed());

        Ok(Self::finish_components(
            hdr, reversible, planes_q, planes_f, report,
        ))
    }

    /// Pipelined tile decode: Tier-2 parsing streams owned block jobs into
    /// a [`PipelineQueue`] the moment each precinct's segment lengths are
    /// known; `p` Tier-1 workers drain it with per-worker scratch,
    /// dequantize (lossy path) and scatter each block into its subband
    /// buffer; the driving thread synthesizes each inverse-DWT level as
    /// soon as the [`Gate`] reports all bands of that level reassembled.
    /// Bit-identical to the barriered path by construction: the same
    /// per-block decode, the same per-sample dequantization expression,
    /// and a level order identical to `inverse_*_with`.
    // AUDIT(hot): queue, gate, and band buffers are built once per tile
    // (setup-time); steady-state block decodes run on warm per-worker
    // scratch and the reassembly gate locks O(blocks) times in total —
    // bench_decode's counting-allocator probe pins the warm path at
    // zero allocations per block.
    fn decode_tile_pipelined(
        &self,
        hdr: &MainHeader,
        ctx: &TileCtx<'_>,
        deco: &Decomposition,
        res: &[Vec<(usize, Subband)>],
        report: &mut DecodeReport,
    ) -> Result<Image, CodecError> {
        let reversible = hdr.wavelet == Wavelet::Reversible53;
        let p = self.parallel.workers();
        let policy = self.stage_policy.resolve();
        let band_list = deco.subbands();
        let nbands = band_list.len();
        let (w, h) = (ctx.w, ctx.h);
        let levels = usize::from(hdr.levels);
        let slots = hdr.ncomp.saturating_mul(levels.saturating_add(1));

        let t0 = Instant::now();
        let metas: Vec<BandMeta> = band_list
            .iter()
            .map(|sb| BandMeta {
                x0: sb.x0,
                y0: sb.y0,
                w: sb.w,
                h: sb.h,
                level: sb.level,
                step: band_step(hdr.base_step, sb.level.max(1), sb.band),
            })
            .collect();
        let band_levels: Vec<u8> = band_list.iter().map(|sb| sb.level).collect();
        // Precincts feeding each gate slot (empty bands included — the
        // parser finalizes those immediately).
        let mut open_precincts = vec![0usize; slots];
        for comp in 0..hdr.ncomp {
            for sb in &band_list {
                let slot = comp
                    .saturating_mul(levels.saturating_add(1))
                    .saturating_add(usize::from(sb.level));
                if let Some(o) = open_precincts.get_mut(slot) {
                    *o = o.saturating_add(1);
                }
            }
        }

        // One zeroed reassembly buffer per (component, band). Setup-time
        // allocation, not per-block: workers scatter into these and the
        // driver copies each band into its Mallat position once its level
        // gate passes.
        let nbufs = hdr.ncomp.saturating_mul(nbands);
        let buf_len = |i: usize| {
            metas
                .get(i.checked_rem(nbands.max(1)).unwrap_or(0))
                .map_or(0, |m| m.w.saturating_mul(m.h))
        };
        let (mut bufs_i, mut bufs_f): (Vec<Vec<i32>>, Vec<Vec<f32>>) = if reversible {
            (
                (0..nbufs).map(|i| vec![0i32; buf_len(i)]).collect(),
                Vec::new(),
            )
        } else {
            (
                Vec::new(),
                (0..nbufs).map(|i| vec![0f32; buf_len(i)]).collect(),
            )
        };
        let ptrs_i: Vec<SendPtr<i32>> = bufs_i
            .iter_mut()
            .map(|b| SendPtr::new(b.as_mut_slice()))
            .collect();
        let ptrs_f: Vec<SendPtr<f32>> = bufs_f
            .iter_mut()
            .map(|b| SendPtr::new(b.as_mut_slice()))
            .collect();

        let gate = Gate::new(slots);
        let failed = AtomicBool::new(false);
        let total_cost = AtomicU64::new(0);
        let remaining_cost = AtomicU64::new(0);
        let queue: PipelineQueue<BlockJob> = PipelineQueue::new();
        let tier1_opts = hdr.tier1;

        let mut planes_q: Vec<Plane<i32>> = Vec::new();
        let mut planes_f: Vec<Plane<f32>> = Vec::new();
        if reversible {
            planes_q = (0..hdr.ncomp).map(|_| Plane::new(w, h)).collect();
        } else {
            planes_f = (0..hdr.ncomp).map(|_| Plane::new(w, h)).collect();
        }
        report.stages.add(stage::SETUP, t0.elapsed());

        let mut tier2_time = Duration::ZERO;
        let mut n_jobs = 0usize;

        let consume = |state: &mut WorkerState, _i: usize, job: BlockJob| {
            // Drain-only mode after any failure: the queue must still be
            // emptied so the scope join can complete, but no further work
            // is useful.
            if failed.load(Ordering::Relaxed) {
                return;
            }
            match state.scratch.decode_into(
                job.geom.w,
                job.geom.h,
                job.ctx,
                job.msb,
                &job.segs,
                tier1_opts,
                &mut state.out,
            ) {
                Ok(()) => {
                    // AUDIT(block): `band_idx < nbands` and `comp < ncomp`
                    // by construction in the parser; `geom` comes from
                    // `blocks_of` over this band, so every scattered row
                    // lies inside the band buffer; `out` has exactly
                    // `geom.w * geom.h` samples (tier-1 contract).
                    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
                    {
                        let meta = &metas[job.band_idx];
                        let buf = job.comp * nbands + job.band_idx;
                        for dy in 0..job.geom.h {
                            let off =
                                (job.geom.y0 - meta.y0 + dy) * meta.w + (job.geom.x0 - meta.x0);
                            let src = &state.out[dy * job.geom.w..(dy + 1) * job.geom.w];
                            if reversible {
                                // SAFETY: blocks tile a band disjointly and
                                // each job is delivered to exactly one
                                // worker, so no two writers ever touch the
                                // same span; the driver only reads a buffer
                                // after this worker's `block_done` below has
                                // synchronized with its gate wait
                                // (mutex-established happens-before).
                                let band_ptr: &SendPtr<i32> = &ptrs_i[buf];
                                // SAFETY: see the block comment above the
                                // `band_ptr` binding.
                                // AUDIT(alias): blocks tile the band, so
                                // row spans of distinct jobs are disjoint.
                                let dst = unsafe { band_ptr.slice_mut(off, job.geom.w) };
                                dst.copy_from_slice(src);
                            } else {
                                let band_ptr: &SendPtr<f32> = &ptrs_f[buf];
                                // SAFETY: same disjointness and gate
                                // synchronization as the reversible arm.
                                // AUDIT(alias): disjoint per-job row spans,
                                // as in the reversible arm.
                                let dst = unsafe { band_ptr.slice_mut(off, job.geom.w) };
                                for (d, &q) in dst.iter_mut().zip(src) {
                                    *d = dequantize_value(q, meta.step);
                                }
                            }
                        }
                        remaining_cost.fetch_sub(job.cost, Ordering::Relaxed);
                        gate.block_done(job.comp * (levels + 1) + usize::from(meta.level));
                    }
                }
                Err(e) => {
                    failed.store(true, Ordering::Relaxed);
                    gate.fail(CodecError::Tier1(e));
                }
            }
        };

        let produce = || {
            let t0 = Instant::now();
            let mut sink = QueueSink {
                queue: &queue,
                gate: &gate,
                band_levels: &band_levels,
                levels,
                open_precincts,
                staged: vec![0; slots],
                total_cost: &total_cost,
                remaining_cost: &remaining_cost,
                next: 0,
                n_jobs: 0,
            };
            let parsed = parse_tile_blocks(hdr, ctx, res, nbands, &mut sink);
            n_jobs = sink.n_jobs;
            if let Err(e) = parsed {
                failed.store(true, Ordering::Relaxed);
                gate.fail(e);
            }
            gate.finish_parse();
            tier2_time = t0.elapsed();
        };

        type DriveOut = Result<(DwtStats, Duration, Duration), CodecError>;
        let drive = || -> DriveOut {
            let mut dwt = DwtStats::default();
            let mut copy_time = Duration::ZERO;
            let mut dwt_time = Duration::ZERO;
            let vstrat = VerticalStrategy::DEFAULT_STRIP;
            // AUDIT(block): `comp < ncomp` bounds the plane index and the
            // slot arithmetic mirrors the worker side.
            #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
            for comp in 0..hdr.ncomp {
                // Deepest level first: slot `levels` covers the LL band
                // plus the deepest detail bands, so the first gate admits
                // the first synthesis step — exactly the level order of
                // `inverse_*_with`.
                for lvl in (1..=levels).rev() {
                    gate.wait_slot(comp * (levels + 1) + lvl)?;
                    let t0 = Instant::now();
                    copy_bands_level(
                        &metas,
                        nbands,
                        comp,
                        lvl,
                        reversible,
                        &ptrs_i,
                        &ptrs_f,
                        &mut planes_q,
                        &mut planes_f,
                    );
                    copy_time += t0.elapsed();
                    let t0 = Instant::now();
                    let lanes = dwt_lanes(
                        policy,
                        p,
                        remaining_cost.load(Ordering::Relaxed),
                        total_cost.load(Ordering::Relaxed),
                    );
                    let lane_exec = if lanes <= 1 {
                        Exec::SEQ
                    } else {
                        Exec::threads(lanes)
                    };
                    // AUDIT(block): `lvl >= 1` in this loop.
                    #[allow(clippy::arithmetic_side_effects)]
                    let l = (lvl - 1) as u8;
                    let stats = if reversible {
                        inverse_53_level(
                            &mut planes_q[comp],
                            deco,
                            l,
                            vstrat,
                            LiftingMode::PerStep,
                            self.simd,
                            &lane_exec,
                        )
                    } else {
                        inverse_97_level(
                            &mut planes_f[comp],
                            deco,
                            l,
                            vstrat,
                            LiftingMode::PerStep,
                            self.simd,
                            &lane_exec,
                        )
                    };
                    dwt.merge(&stats);
                    dwt_time += t0.elapsed();
                }
                if levels == 0 {
                    gate.wait_slot(comp)?;
                    let t0 = Instant::now();
                    copy_bands_level(
                        &metas,
                        nbands,
                        comp,
                        0,
                        reversible,
                        &ptrs_i,
                        &ptrs_f,
                        &mut planes_q,
                        &mut planes_f,
                    );
                    copy_time += t0.elapsed();
                }
            }
            gate.wait_parse_done()?;
            Ok((dwt, copy_time, dwt_time))
        };

        let t_pipe = Instant::now();
        let driven = pipeline_overlap_with_state(
            p,
            &queue,
            |_| WorkerState::default(),
            consume,
            || gate.fail(CodecError::Resource("tier-1 decode worker panicked".into())),
            produce,
            drive,
        );
        let pipe_span = t_pipe.elapsed();
        let (dwt, copy_time, dwt_time) = driven?;

        report.num_blocks = report.num_blocks.saturating_add(n_jobs);
        report.dwt.merge(&dwt);
        report.stages.add(stage::TIER2, tier2_time);
        report.stages.add(stage::QUANTIZATION, copy_time);
        report.stages.add(stage::INTRA_COMPONENT, dwt_time);
        // The rest of the pipelined span is Tier-1 work the driver waited
        // on (decode + scatter); stage times stay comparable to the
        // barriered breakdown.
        let tier1_time = pipe_span
            .saturating_sub(tier2_time)
            .saturating_sub(copy_time)
            .saturating_sub(dwt_time);
        report.stages.add(stage::TIER1, tier1_time);

        Ok(Self::finish_components(
            hdr, reversible, planes_q, planes_f, report,
        ))
    }

    /// Shared epilogue of both tile-decode paths: inverse component
    /// transform, lossy rounding, and the DC level shift.
    // AUDIT(hot): once-per-tile epilogue — O(components) plane moves and
    // pushes, not per-sample work.
    fn finish_components(
        hdr: &MainHeader,
        reversible: bool,
        mut planes_q: Vec<Plane<i32>>,
        mut planes_f: Vec<Plane<f32>>,
        report: &mut DecodeReport,
    ) -> Image {
        let t0 = Instant::now();
        let mut planes_out: Vec<Plane<i32>>;
        if reversible {
            if hdr.ncomp == 3 {
                // AUDIT(block): split_at_mut(1) on a 3-element vec.
                #[allow(clippy::indexing_slicing)]
                {
                    let (a, rest) = planes_q.split_at_mut(1);
                    let (b, c) = rest.split_at_mut(1);
                    rct_inverse(&mut a[0], &mut b[0], &mut c[0]);
                }
            }
            planes_out = planes_q;
        } else {
            if hdr.ncomp == 3 {
                // AUDIT(block): split_at_mut(1) on a 3-element vec.
                #[allow(clippy::indexing_slicing)]
                {
                    let (a, rest) = planes_f.split_at_mut(1);
                    let (b, c) = rest.split_at_mut(1);
                    ict_inverse(&mut a[0], &mut b[0], &mut c[0]);
                }
            }
            planes_out = Vec::with_capacity(hdr.ncomp);
            for f in &planes_f {
                planes_out.push(f.map(|v| v.round() as i32));
            }
        }
        report.stages.add(stage::INTER_COMPONENT, t0.elapsed());

        let mut img = Image::new(planes_out, hdr.bit_depth, hdr.signed);
        dc_level_shift_inverse(&mut img);
        img
    }
}

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;
    use crate::config::{EncoderConfig, FilterStrategy, RateControl};
    use crate::encode::Encoder;
    use pj2k_image::metrics::{max_abs_error, psnr};
    use pj2k_image::synth;

    fn encode(img: &Image, cfg: EncoderConfig) -> Vec<u8> {
        Encoder::new(cfg).unwrap().encode(img).0
    }

    #[test]
    fn lossless_roundtrip_is_exact() {
        let img = synth::natural_gray(96, 64, 4);
        let bytes = encode(
            &img,
            EncoderConfig {
                wavelet: Wavelet::Reversible53,
                rate: RateControl::Lossless,
                levels: 4,
                ..Default::default()
            },
        );
        let (out, report) = Decoder::default().decode(&bytes).unwrap();
        assert_eq!(max_abs_error(&img, &out), 0, "lossless must be bit exact");
        assert!(report.num_blocks > 0);
    }

    #[test]
    fn lossless_rgb_roundtrip_is_exact() {
        let img = synth::natural_rgb(48, 48, 8);
        let bytes = encode(
            &img,
            EncoderConfig {
                wavelet: Wavelet::Reversible53,
                rate: RateControl::Lossless,
                levels: 3,
                ..Default::default()
            },
        );
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        assert_eq!(max_abs_error(&img, &out), 0);
    }

    #[test]
    fn lossy_roundtrip_reaches_reasonable_psnr() {
        let img = synth::natural_gray(128, 128, 6);
        let bytes = encode(
            &img,
            EncoderConfig {
                rate: RateControl::TargetBpp(vec![2.0]),
                levels: 4,
                ..Default::default()
            },
        );
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        let q = psnr(&img, &out);
        assert!(q > 30.0, "2 bpp PSNR too low: {q}");
    }

    #[test]
    fn more_bpp_means_higher_psnr() {
        let img = synth::natural_gray(128, 128, 2);
        let mut prev = 0.0;
        for bpp in [0.125, 0.5, 2.0] {
            let bytes = encode(
                &img,
                EncoderConfig {
                    rate: RateControl::TargetBpp(vec![bpp]),
                    levels: 4,
                    ..Default::default()
                },
            );
            let (out, _) = Decoder::default().decode(&bytes).unwrap();
            let q = psnr(&img, &out);
            assert!(q > prev, "bpp {bpp}: psnr {q} <= {prev}");
            prev = q;
        }
    }

    #[test]
    fn layered_stream_decodes_progressively() {
        let img = synth::natural_gray(128, 128, 12);
        let bytes = encode(
            &img,
            EncoderConfig {
                rate: RateControl::TargetBpp(vec![0.25, 1.0, 3.0]),
                levels: 4,
                ..Default::default()
            },
        );
        let mut prev = 0.0;
        for layers in 1..=3 {
            let dec = Decoder {
                max_layers: Some(layers),
                ..Default::default()
            };
            let (out, _) = dec.decode(&bytes).unwrap();
            let q = psnr(&img, &out);
            assert!(
                q >= prev - 0.01,
                "layer {layers}: psnr {q} dropped from {prev}"
            );
            prev = q;
        }
        assert!(prev > 30.0, "full-quality psnr {prev}");
    }

    #[test]
    fn tiled_roundtrip_works() {
        let img = synth::natural_gray(100, 80, 5);
        let bytes = encode(
            &img,
            EncoderConfig {
                tiles: Some((64, 64)),
                levels: 3,
                rate: RateControl::TargetBpp(vec![2.0]),
                ..Default::default()
            },
        );
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        assert_eq!(out.width(), 100);
        assert_eq!(out.height(), 80);
        assert!(psnr(&img, &out) > 28.0);
    }

    #[test]
    fn parallel_decoding_matches_sequential() {
        let img = synth::natural_gray(96, 96, 3);
        let bytes = encode(
            &img,
            EncoderConfig {
                levels: 3,
                ..Default::default()
            },
        );
        let (a, _) = Decoder::default().decode(&bytes).unwrap();
        for parallel in [
            ParallelMode::WorkerPool { workers: 3 },
            ParallelMode::Rayon { workers: 2 },
        ] {
            let (b, _) = Decoder {
                parallel,
                ..Default::default()
            }
            .decode(&bytes)
            .unwrap();
            assert_eq!(a, b, "{parallel:?}");
        }
    }

    #[test]
    fn decode_schedules_bit_identical() {
        // The decoder-side tier-1 schedule knob must never change the
        // image, only the work distribution.
        let img = synth::natural_gray(96, 96, 7);
        let bytes = encode(
            &img,
            EncoderConfig {
                levels: 3,
                ..Default::default()
            },
        );
        let (a, _) = Decoder::default().decode(&bytes).unwrap();
        for schedule in [
            Schedule::StaggeredRoundRobin,
            Schedule::Dynamic { chunk: 1 },
            Schedule::Dynamic { chunk: 4 },
        ] {
            let dec = Decoder {
                parallel: ParallelMode::WorkerPool { workers: 3 },
                tier1_schedule: schedule,
                ..Default::default()
            };
            let (b, _) = dec.decode(&bytes).unwrap();
            assert_eq!(a, b, "{schedule:?}");
        }
    }

    #[test]
    fn decode_simd_tiers_bit_identical() {
        use crate::config::SimdTier;
        // Decoding an encoder-produced stream must be bit-identical under
        // every SIMD tier, both wavelet paths.
        for (wavelet, rate) in [
            (Wavelet::Reversible53, RateControl::Lossless),
            (Wavelet::Irreversible97, RateControl::TargetBpp(vec![2.0])),
        ] {
            let img = synth::natural_gray(80, 56, 9);
            let bytes = encode(
                &img,
                EncoderConfig {
                    wavelet,
                    rate,
                    levels: 3,
                    ..Default::default()
                },
            );
            let scalar_dec = Decoder {
                simd: SimdMode::Scalar,
                ..Default::default()
            };
            let (a, _) = scalar_dec.decode(&bytes).unwrap();
            let mut modes = vec![SimdMode::Auto];
            for tier in [SimdTier::Portable, SimdTier::Sse2, SimdTier::Avx2] {
                if tier.is_supported() {
                    modes.push(SimdMode::Forced(tier));
                }
            }
            for mode in modes {
                let dec = Decoder {
                    simd: mode,
                    ..Default::default()
                };
                let (b, _) = dec.decode(&bytes).unwrap();
                assert_eq!(a, b, "{wavelet:?} {mode:?}");
            }
        }
    }

    #[test]
    fn whole_codec_scalar_vs_auto_bit_identical() {
        // Forced-scalar and auto-dispatched SIMD encoders must emit the
        // same codestream byte for byte, and the decoded images must
        // match regardless of which side used SIMD.
        let img = synth::natural_gray(96, 64, 11);
        let mk = |simd| {
            encode(
                &img,
                EncoderConfig {
                    levels: 3,
                    filter: FilterStrategy::Strip,
                    simd,
                    ..Default::default()
                },
            )
        };
        let scalar_stream = mk(SimdMode::Scalar);
        let auto_stream = mk(SimdMode::Auto);
        assert_eq!(scalar_stream, auto_stream, "codestreams must be identical");
        let (a, _) = Decoder {
            simd: SimdMode::Scalar,
            ..Default::default()
        }
        .decode(&scalar_stream)
        .unwrap();
        let (b, _) = Decoder::default().decode(&auto_stream).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn whole_codec_reference_vs_bitplane_bit_identical() {
        // The Tier-1 engine knob must never change the codestream: the
        // reference flag-grid coder and the packed bitplane coder have to
        // emit the same bytes, across coding styles and parallel modes.
        use crate::config::{Tier1Engine, Tier1Options};
        let img = synth::natural_gray(96, 64, 21);
        for tier1 in [
            Tier1Options::default(),
            Tier1Options {
                stripe_causal: true,
                reset_contexts: false,
                bypass: true,
            },
        ] {
            let mk = |tier1_engine, parallel| {
                encode(
                    &img,
                    EncoderConfig {
                        levels: 3,
                        tier1,
                        tier1_engine,
                        parallel,
                        ..Default::default()
                    },
                )
            };
            let reference = mk(Tier1Engine::Reference, ParallelMode::Sequential);
            for parallel in [
                ParallelMode::Sequential,
                ParallelMode::WorkerPool { workers: 3 },
            ] {
                let bitplane = mk(Tier1Engine::Bitplane, parallel);
                assert_eq!(
                    reference, bitplane,
                    "engines diverged: {tier1:?} {parallel:?}"
                );
            }
            let (a, _) = Decoder::default().decode(&reference).unwrap();
            let (b, _) = Decoder::default()
                .decode(&mk(Tier1Engine::Bitplane, ParallelMode::Sequential))
                .unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn padded_width_stream_decodes_identically() {
        let img = synth::natural_gray(128, 128, 14);
        let cfg_naive = EncoderConfig {
            levels: 3,
            ..Default::default()
        };
        let cfg_padded = EncoderConfig {
            levels: 3,
            filter: FilterStrategy::PaddedWidth,
            ..Default::default()
        };
        let a = encode(&img, cfg_naive);
        let b = encode(&img, cfg_padded);
        assert_eq!(a, b);
    }

    #[test]
    fn garbage_input_is_rejected_not_panicking() {
        assert!(Decoder::default().decode(&[]).is_err());
        assert!(Decoder::default().decode(&[0x00, 0x11, 0x22]).is_err());
        assert!(Decoder::default().decode(&[0xFF, 0x4F]).is_err());
        // SOC then garbage
        let mut v = vec![0xFF, 0x4F];
        v.extend_from_slice(&[0xFF; 32]);
        assert!(Decoder::default().decode(&v).is_err());
    }

    #[test]
    fn parse_errors_carry_marker_and_offset() {
        // Missing SOC: the error names the marker found and where.
        let err = Decoder::default().decode(&[0x00, 0x11]).unwrap_err();
        match err {
            CodecError::Codestream(pe) => {
                assert_eq!(pe.offset(), 0);
                assert_eq!(pe.marker(), Some(0x0011));
            }
            other => panic!("expected Codestream error, got {other:?}"),
        }
    }

    #[test]
    fn tiny_stream_claiming_huge_tiles_is_rejected_cheaply() {
        // SIZ claims the maximal pixel budget with 1x1 tiles; the stream
        // then ends. The decoder must fail on the missing first SOT without
        // reserving hundreds of millions of tile slots.
        let mut w = pj2k_tier2::codestream::MarkerWriter::new();
        w.marker(codestream::SOC);
        let mut p = pj2k_tier2::codestream::PayloadWriter::new();
        p.u32(16384);
        p.u32(16384);
        p.u8(1);
        p.u8(8);
        p.u8(0);
        p.u32(1); // 1x1 tiles => 2^28 of them
        p.u32(1);
        w.segment(codestream::SIZ, &p.finish());
        let mut p = pj2k_tier2::codestream::PayloadWriter::new();
        p.u8(0); // 5/3
        p.u8(2);
        p.u16(64);
        p.u16(64);
        p.u16(1);
        p.u8(0);
        w.segment(codestream::COD, &p.finish());
        let mut p = pj2k_tier2::codestream::PayloadWriter::new();
        p.f64(0.5);
        w.segment(codestream::QCD, &p.finish());
        let bytes = w.finish();
        assert!(matches!(
            Decoder::default().decode(&bytes),
            Err(CodecError::Codestream(_))
        ));
    }

    #[test]
    fn tiny_stream_claiming_many_blocks_is_rejected_before_allocation() {
        // A maximal image with minimal 4x4 code-blocks wants state for
        // 2^24 blocks; the block budget must reject it as soon as the tile
        // is entered, long before per-block state exists.
        let mut w = pj2k_tier2::codestream::MarkerWriter::new();
        w.marker(codestream::SOC);
        let mut p = pj2k_tier2::codestream::PayloadWriter::new();
        p.u32(16384);
        p.u32(16384);
        p.u8(1);
        p.u8(8);
        p.u8(0);
        p.u32(0); // untiled
        p.u32(0);
        w.segment(codestream::SIZ, &p.finish());
        let mut p = pj2k_tier2::codestream::PayloadWriter::new();
        p.u8(0);
        p.u8(0); // no decomposition: one LL band
        p.u16(4); // 4x4 blocks
        p.u16(4);
        p.u16(1);
        p.u8(0);
        w.segment(codestream::COD, &p.finish());
        let mut p = pj2k_tier2::codestream::PayloadWriter::new();
        p.f64(0.5);
        w.segment(codestream::QCD, &p.finish());
        // One tile-part with an empty body: tile parsing must fail on the
        // block budget, not by allocating gigabytes first.
        let mut p = pj2k_tier2::codestream::PayloadWriter::new();
        p.u32(0);
        p.u32(0);
        w.segment(codestream::SOT, &p.finish());
        w.marker(codestream::SOD);
        w.marker(codestream::EOC);
        let bytes = w.finish();
        match Decoder::default().decode(&bytes) {
            Err(CodecError::Invalid(m)) => {
                assert!(m.contains("code-blocks"), "unexpected message: {m}")
            }
            other => panic!("expected block-budget rejection, got {other:?}"),
        }
    }

    #[test]
    fn truncating_every_prefix_never_panics() {
        let img = synth::natural_gray(48, 48, 1);
        let bytes = encode(
            &img,
            EncoderConfig {
                levels: 2,
                ..Default::default()
            },
        );
        for cut in (0..bytes.len()).step_by(7) {
            let _ = Decoder::default().decode(&bytes[..cut]);
        }
    }

    #[test]
    fn pipelined_decode_bit_identical_across_modes() {
        // The tentpole contract: overlap x executor x schedule x stage
        // policy never changes a single pixel, both wavelet paths.
        use crate::config::DecodeStagePolicy;
        for (wavelet, rate) in [
            (Wavelet::Reversible53, RateControl::Lossless),
            (Wavelet::Irreversible97, RateControl::TargetBpp(vec![2.0])),
        ] {
            let img = synth::natural_gray(96, 80, 17);
            let bytes = encode(
                &img,
                EncoderConfig {
                    wavelet,
                    rate,
                    levels: 3,
                    ..Default::default()
                },
            );
            let (a, _) = Decoder::default().decode(&bytes).unwrap();
            for parallel in [
                ParallelMode::Sequential,
                ParallelMode::WorkerPool { workers: 2 },
                ParallelMode::WorkerPool { workers: 4 },
                ParallelMode::Rayon { workers: 2 },
            ] {
                for schedule in [
                    Schedule::StaggeredRoundRobin,
                    Schedule::Dynamic { chunk: 4 },
                ] {
                    for policy in [DecodeStagePolicy::Static, DecodeStagePolicy::CostWeighted] {
                        let dec = Decoder {
                            parallel,
                            tier1_schedule: schedule,
                            overlap: StageOverlap::Pipelined,
                            stage_policy: policy,
                            ..Default::default()
                        };
                        let (b, report) = dec.decode(&bytes).unwrap();
                        assert_eq!(a, b, "{wavelet:?} {parallel:?} {schedule:?} {policy:?}");
                        assert!(report.num_blocks > 0);
                    }
                }
            }
        }
    }

    #[test]
    fn pipelined_decode_honors_layer_truncation() {
        // Progressive decoding finalizes each precinct at the last
        // *decoded* layer; the pipelined path must agree with the
        // barriered one at every truncation depth.
        let img = synth::natural_gray(96, 96, 23);
        let bytes = encode(
            &img,
            EncoderConfig {
                rate: RateControl::TargetBpp(vec![0.25, 1.0, 3.0]),
                levels: 3,
                ..Default::default()
            },
        );
        for layers in 1..=3 {
            let (a, _) = Decoder {
                max_layers: Some(layers),
                ..Default::default()
            }
            .decode(&bytes)
            .unwrap();
            let (b, _) = Decoder {
                max_layers: Some(layers),
                parallel: ParallelMode::WorkerPool { workers: 3 },
                overlap: StageOverlap::Pipelined,
                ..Default::default()
            }
            .decode(&bytes)
            .unwrap();
            assert_eq!(a, b, "layers={layers}");
        }
    }

    #[test]
    fn pipelined_decode_matches_on_tiled_and_no_decomposition_streams() {
        // Tiles exercise one pipeline per tile body; levels=0 exercises
        // the copy-only gate path with no inverse DWT at all.
        for (tiles, levels) in [(Some((64, 64)), 3), (None, 0)] {
            let img = synth::natural_gray(100, 80, 29);
            let bytes = encode(
                &img,
                EncoderConfig {
                    tiles,
                    levels,
                    wavelet: Wavelet::Reversible53,
                    rate: RateControl::Lossless,
                    ..Default::default()
                },
            );
            let (a, _) = Decoder::default().decode(&bytes).unwrap();
            let (b, _) = Decoder {
                parallel: ParallelMode::WorkerPool { workers: 4 },
                overlap: StageOverlap::Pipelined,
                ..Default::default()
            }
            .decode(&bytes)
            .unwrap();
            assert_eq!(a, b, "tiles={tiles:?} levels={levels}");
            assert_eq!(max_abs_error(&img, &b), 0);
        }
    }

    #[test]
    fn pipelined_decode_with_roi_falls_back_and_matches() {
        // ROI-shifted streams are decoded by the barriered fallback; the
        // pipelined knob must still produce identical pixels.
        let img = synth::natural_gray(96, 96, 31);
        let bytes = encode(
            &img,
            EncoderConfig {
                levels: 3,
                roi: Some(crate::config::Roi {
                    x0: 16,
                    y0: 16,
                    w: 32,
                    h: 32,
                }),
                ..Default::default()
            },
        );
        let (a, _) = Decoder::default().decode(&bytes).unwrap();
        let (b, _) = Decoder {
            parallel: ParallelMode::WorkerPool { workers: 3 },
            overlap: StageOverlap::Pipelined,
            ..Default::default()
        }
        .decode(&bytes)
        .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn dwt_lanes_policy_split() {
        use crate::config::DecodeStagePolicy::{Auto, CostWeighted, Static};
        // Static: everything stays on the driver until tier-1 drains.
        assert_eq!(dwt_lanes(Static, 4, 10, 100), 1);
        assert_eq!(dwt_lanes(Static, 4, 0, 100), 4);
        // Cost-weighted: tier-1 keeps a share proportional to remaining
        // cost; the DWT always gets at least one lane.
        assert_eq!(dwt_lanes(CostWeighted, 8, 0, 100), 8);
        assert_eq!(dwt_lanes(CostWeighted, 8, 100, 100), 1);
        assert_eq!(dwt_lanes(CostWeighted, 8, 1, 100), 7);
        assert_eq!(dwt_lanes(CostWeighted, 8, 50, 100), 4);
        // Degenerate inputs never panic and never return zero lanes.
        assert_eq!(dwt_lanes(CostWeighted, 0, 50, 100), 1);
        assert_eq!(dwt_lanes(Auto, 4, 0, 0), 4);
        assert!(dwt_lanes(Auto, 4, u64::MAX, 1) >= 1);
    }

    #[test]
    fn effective_schedule_sharpens_skewed_dynamic_chunks() {
        use crate::config::DecodeStagePolicy::{CostWeighted, Static};
        let skewed = [1u64, 1, 1, 1, 100];
        let flat = [10u64, 12, 9, 11];
        // Skew + coarse dynamic chunk + cost-weighted policy => chunk 1.
        assert_eq!(
            effective_schedule(CostWeighted, Schedule::Dynamic { chunk: 8 }, &skewed),
            Schedule::Dynamic { chunk: 1 }
        );
        // Flat costs keep the configured chunk.
        assert_eq!(
            effective_schedule(CostWeighted, Schedule::Dynamic { chunk: 8 }, &flat),
            Schedule::Dynamic { chunk: 8 }
        );
        // Static policy and non-dynamic schedules pass through untouched.
        assert_eq!(
            effective_schedule(Static, Schedule::Dynamic { chunk: 8 }, &skewed),
            Schedule::Dynamic { chunk: 8 }
        );
        assert_eq!(
            effective_schedule(CostWeighted, Schedule::StaggeredRoundRobin, &skewed),
            Schedule::StaggeredRoundRobin
        );
        assert_eq!(
            effective_schedule(CostWeighted, Schedule::Dynamic { chunk: 8 }, &[]),
            Schedule::Dynamic { chunk: 8 }
        );
    }

    #[test]
    fn job_cost_scales_with_bytes_and_passes() {
        assert_eq!(job_cost(100, 3), 300);
        // Zero-byte or zero-pass degenerate blocks still carry unit cost.
        assert_eq!(job_cost(0, 0), 1);
        assert_eq!(job_cost(7, 0), 7);
        // No overflow on adversarial sizes.
        assert_eq!(job_cost(usize::MAX, usize::MAX), u64::MAX);
    }
}
