//! Stage naming and reporting shared by encoder and decoder.

/// Canonical stage names, matching the paper's Fig. 3 runtime breakdown.
pub mod stage {
    /// Reading/writing raw image pixels.
    pub const IMAGE_IO: &str = "image I/O";
    /// Buffer allocation, tiling, sample-type conversion.
    pub const SETUP: &str = "pipeline setup";
    /// RCT/ICT color transform.
    pub const INTER_COMPONENT: &str = "inter-component transform";
    /// The wavelet transform.
    pub const INTRA_COMPONENT: &str = "intra-component transform";
    /// Scalar quantization (lossy path only).
    pub const QUANTIZATION: &str = "quantization";
    /// EBCOT Tier-1 code-block coding.
    pub const TIER1: &str = "tier-1 coding";
    /// PCRD rate allocation.
    pub const RD_ALLOCATION: &str = "R/D allocation";
    /// Packet header generation / parsing.
    pub const TIER2: &str = "tier-2 coding";
    /// Codestream marker assembly / parsing.
    pub const BITSTREAM_IO: &str = "bitstream I/O";

    /// All stages in pipeline order.
    pub const ALL: [&str; 9] = [
        IMAGE_IO,
        SETUP,
        INTER_COMPONENT,
        INTRA_COMPONENT,
        QUANTIZATION,
        TIER1,
        RD_ALLOCATION,
        TIER2,
        BITSTREAM_IO,
    ];

    /// Stages the paper identifies as parallelizable with little effort.
    pub const PARALLEL: [&str; 3] = [INTRA_COMPONENT, QUANTIZATION, TIER1];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_stages_are_a_subset() {
        for s in stage::PARALLEL {
            assert!(stage::ALL.contains(&s));
        }
    }
}
