//! # pj2k — a parallel JPEG2000 codec
//!
//! From-scratch Rust reproduction of the system studied in *Parallel
//! JPEG2000 Image Coding on Multiprocessors* (Meerwald, Norcen, Uhl — IPPS
//! 2002): a complete JPEG2000-style encoder/decoder whose two hot stages —
//! the wavelet transform and Tier-1 code-block coding — can be executed on
//! shared-memory multiprocessors, with the paper's cache-aware "improved
//! vertical filtering" available as a [`FilterStrategy`].
//!
//! ## Pipeline
//!
//! ```text
//! image I/O -> pipeline setup -> inter-component transform ->
//! intra-component transform (DWT) -> quantization -> tier-1 coding ->
//! R/D allocation (PCRD) -> tier-2 coding -> bitstream I/O
//! ```
//!
//! Stage wall-clock is recorded under exactly these names
//! ([`report::stage`]) so the harness can regenerate the paper's runtime
//! breakdowns (Figs. 3, 6, 9).
//!
//! ## Quick example
//!
//! ```
//! use pj2k_core::{Encoder, Decoder, EncoderConfig, RateControl};
//! use pj2k_image::synth;
//!
//! let img = synth::natural_gray(128, 128, 42);
//! let cfg = EncoderConfig {
//!     rate: RateControl::TargetBpp(vec![1.0]),
//!     ..EncoderConfig::default()
//! };
//! let (bytes, report) = Encoder::new(cfg).unwrap().encode(&img);
//! assert!(bytes.len() < 128 * 128); // ~1 bpp on an 8 bpp image
//! let (out, _) = Decoder::default().decode(&bytes).unwrap();
//! assert_eq!(out.width(), 128);
//! let psnr = pj2k_image::metrics::psnr(&img, &out);
//! assert!(psnr > 25.0, "psnr {psnr}");
//! # let _ = report;
//! ```

pub mod blocks;
pub mod config;
pub mod decode;
pub mod encode;
pub mod quant;
pub mod report;
pub mod roi;

pub use config::{
    ConfigError, DecodeStagePolicy, EncoderConfig, FilterStrategy, LiftingMode, ParallelMode,
    RateControl, Roi, Schedule, StageOverlap,
};
pub use decode::{CodecError, DecodeReport, Decoder};
pub use encode::{EncodeReport, Encoder};
pub use pj2k_dwt::Wavelet;
