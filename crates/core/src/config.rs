//! Encoder configuration: wavelet, code-blocks, rate control, tiling, and
//! the two axes the paper studies — parallelization mode and
//! vertical-filtering strategy.

pub use pj2k_dwt::LiftingMode;
use pj2k_dwt::Wavelet;
pub use pj2k_dwt::{SimdMode, SimdTier};
pub use pj2k_ebcot::{Tier1Engine, Tier1Options};
pub use pj2k_parutil::Schedule;

/// How (and how wide) the codec runs in parallel.
///
/// The two parallel variants mirror the paper's two implementations:
/// `WorkerPool` is the JJ2000 scheme (explicit threads; Tier-1 code-blocks
/// handed out staggered round-robin), `Rayon` is the Jasper/OpenMP scheme
/// (parallel loop splitting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParallelMode {
    /// Single-threaded reference execution.
    Sequential,
    /// Explicit scoped worker threads with static schedules.
    WorkerPool {
        /// Worker thread count (>= 1).
        workers: usize,
    },
    /// Rayon tasks inside a dedicated pool of the given width.
    Rayon {
        /// Rayon pool width (>= 1).
        workers: usize,
    },
}

impl ParallelMode {
    /// Number of workers this mode uses.
    pub fn workers(&self) -> usize {
        match self {
            ParallelMode::Sequential => 1,
            ParallelMode::WorkerPool { workers } | ParallelMode::Rayon { workers } => {
                (*workers).max(1)
            }
        }
    }

    /// The matching static-range executor for DWT/quantization loops.
    pub(crate) fn exec(&self) -> pj2k_parutil::Exec {
        match self {
            ParallelMode::Sequential => pj2k_parutil::Exec::SEQ,
            ParallelMode::WorkerPool { workers } => pj2k_parutil::Exec::threads(*workers),
            ParallelMode::Rayon { workers } => pj2k_parutil::Exec::rayon(*workers),
        }
    }
}

/// Vertical wavelet-filtering strategy (the paper's §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterStrategy {
    /// Original column-at-a-time filtering (cache-hostile on power-of-two
    /// pitches).
    Naive,
    /// Naive filtering over a plane whose row pitch is padded off the power
    /// of two (the paper's first fix: "the image width is forced to be not
    /// a power-of-two").
    PaddedWidth,
    /// Strip filtering: several adjacent columns per processor (the paper's
    /// second, preferred fix).
    Strip,
}

impl FilterStrategy {
    pub(crate) fn vertical(&self) -> pj2k_dwt::VerticalStrategy {
        match self {
            FilterStrategy::Naive | FilterStrategy::PaddedWidth => {
                pj2k_dwt::VerticalStrategy::Naive
            }
            FilterStrategy::Strip => pj2k_dwt::VerticalStrategy::DEFAULT_STRIP,
        }
    }

    /// Extra stride elements to add when laying out component planes.
    pub(crate) fn stride_pad(&self, width: usize) -> usize {
        match self {
            FilterStrategy::PaddedWidth if width.is_power_of_two() && width >= 64 => 8,
            _ => 0,
        }
    }
}

/// How the encoder sequences the DWT → quantization → Tier-1 stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageOverlap {
    /// Whole-image barriers between stages: every component is fully
    /// transformed, then fully quantized, then fully block-coded — the
    /// paper's Fig. 1 pipeline run stage by stage.
    Barriered,
    /// As soon as a decomposition level finalizes its `HL`/`LH`/`HH`
    /// subbands they are handed to quantization and Tier-1 block coding on
    /// the worker pool, while the next DWT level proceeds on the shrinking
    /// `LL` region. The codestream is bit-identical to [`Barriered`]
    /// (asserted in tests); only the schedule changes.
    ///
    /// Configurations the overlap cannot express fall back to the
    /// barriered path transparently: an ROI (MAXSHIFT rescales coefficients
    /// *across* subbands after quantization) and
    /// [`ParallelMode::Rayon`] (the OpenMP analogue in the paper is
    /// barrier-stepped loop splitting).
    ///
    /// [`Barriered`]: StageOverlap::Barriered
    Pipelined,
}

/// How the pipelined decoder splits workers between the Tier-1 block
/// stage and the inverse-DWT stage (the "dynamic repartitioning" of
/// arXiv 1311.5304 applied to this decoder's two compute stages).
///
/// Only consulted when decoding with [`StageOverlap::Pipelined`]; the
/// decoded planes are bit-identical under every policy (asserted in
/// tests) — the policy moves work between stages, never changes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DecodeStagePolicy {
    /// Honour the `PJ2K_DECODE_STAGES` environment variable
    /// (`static` or `cost`/`cost-weighted`), defaulting to
    /// [`DecodeStagePolicy::CostWeighted`].
    #[default]
    Auto,
    /// Fixed stage split: the inverse DWT runs single-lane while Tier-1
    /// blocks remain, and takes the full pool only after the last block.
    Static,
    /// Re-balance at each resolution-level boundary: the per-block cost
    /// estimate from the Tier-2 headers (coded bytes × coding passes —
    /// known *before* any entropy decode) yields the remaining Tier-1
    /// work, and the inverse-DWT lane count grows as that estimate
    /// drains. Also feeds [`Schedule::Dynamic`]'s chunk choice so skewed
    /// block costs get finer-grained claiming.
    CostWeighted,
}

/// Parsed value of a `PJ2K_DECODE_STAGES` token, `None` meaning "no
/// override".
fn parse_stage_policy_token(tok: &str) -> Option<DecodeStagePolicy> {
    match tok.trim().to_ascii_lowercase().as_str() {
        "static" | "fixed" => Some(DecodeStagePolicy::Static),
        "cost" | "cost-weighted" | "costweighted" | "dynamic" => {
            Some(DecodeStagePolicy::CostWeighted)
        }
        _ => None,
    }
}

/// The cached `PJ2K_DECODE_STAGES` override, read once per process. A set
/// but unrecognized value warns on stderr instead of silently falling
/// back, so a typo can't masquerade as an ablation run. Empty and `auto`
/// are accepted silently as explicit "no override".
fn stage_policy_env_override() -> Option<DecodeStagePolicy> {
    static OVERRIDE: std::sync::OnceLock<Option<DecodeStagePolicy>> = std::sync::OnceLock::new();
    *OVERRIDE.get_or_init(|| {
        let v = std::env::var("PJ2K_DECODE_STAGES").ok()?;
        let tok = v.trim();
        if tok.is_empty() || tok.eq_ignore_ascii_case("auto") {
            return None;
        }
        let parsed = parse_stage_policy_token(tok);
        if parsed.is_none() {
            // AUDIT(hot): the OnceLock body runs at most once per process,
            // and this eprintln! only on an unrecognized override — cold.
            eprintln!(
                "pj2k: ignoring unrecognized PJ2K_DECODE_STAGES={v:?} \
                 (expected static|fixed, cost|cost-weighted|dynamic, or auto)"
            );
        }
        parsed
    })
}

impl DecodeStagePolicy {
    /// Resolve to a concrete policy (never [`DecodeStagePolicy::Auto`]):
    /// `Auto` honours `PJ2K_DECODE_STAGES` and otherwise picks
    /// [`DecodeStagePolicy::CostWeighted`].
    #[must_use]
    pub fn resolve(self) -> DecodeStagePolicy {
        match self {
            DecodeStagePolicy::Auto => {
                stage_policy_env_override().unwrap_or(DecodeStagePolicy::CostWeighted)
            }
            forced => forced,
        }
    }
}

/// A rectangular region of interest in image pixel coordinates.
///
/// Coded with the MAXSHIFT method (ISO 15444-1 Annex H): quantized
/// coefficients whose wavelet-domain footprint touches the region are
/// scaled up so every ROI bit-plane precedes every background bit-plane;
/// the decoder separates them by magnitude alone, so no mask is
/// transmitted. When the full shift would overflow the coder's 31
/// bit-planes, the residual shift is applied as a *downshift* of the
/// background (coarser background, still exactly decodable) — the
/// generalization is signalled in the tile header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Roi {
    /// Left pixel column.
    pub x0: usize,
    /// Top pixel row.
    pub y0: usize,
    /// Width in pixels.
    pub w: usize,
    /// Height in pixels.
    pub h: usize,
}

/// Rate control policy.
#[derive(Debug, Clone, PartialEq)]
pub enum RateControl {
    /// Include every coding pass (exact reconstruction with
    /// [`Wavelet::Reversible53`]); a single quality layer.
    Lossless,
    /// PCRD-optimized truncation to cumulative bit-per-pixel targets, one
    /// quality layer per entry (strictly increasing).
    TargetBpp(Vec<f64>),
}

/// Full encoder configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderConfig {
    /// Filter bank. The paper's default is the 9/7 ("7/9-biorthogonal").
    pub wavelet: Wavelet,
    /// Decomposition levels (paper default: 5).
    pub levels: u8,
    /// Code-block width and height (paper default: 64x64, \<= 4096
    /// coefficients).
    pub code_block: (usize, usize),
    /// Rate control / layering.
    pub rate: RateControl,
    /// Base quantization step for the 9/7 path, divided by each subband's
    /// L2 synthesis gain. Ignored by the reversible path.
    pub base_step: f64,
    /// Optional tiling (tile width, tile height). `None` transforms the
    /// whole image — the paper's recommended configuration.
    pub tiles: Option<(usize, usize)>,
    /// Parallel execution mode.
    pub parallel: ParallelMode,
    /// Vertical filtering strategy.
    pub filter: FilterStrategy,
    /// Lifting traversal of both filtering directions: the reference
    /// one-sweep-per-step kernels, or the fused single-pass kernels
    /// (bit-identical outputs, a fraction of the memory traffic).
    pub lifting: LiftingMode,
    /// SIMD tier for the lifting kernels: runtime-detected best tier by
    /// default, a forced tier for ablation, or pure scalar. Every tier
    /// produces bit-identical coefficients (asserted in tests), so this
    /// knob never changes the codestream.
    pub simd: SimdMode,
    /// Whether DWT, quantization and Tier-1 run barrier-separated or
    /// overlapped per decomposition level.
    pub overlap: StageOverlap,
    /// Tier-1 coding-style options (stripe-causal contexts, per-pass
    /// context reset). Signalled in the codestream header.
    pub tier1: Tier1Options,
    /// Tier-1 coding engine: the packed flag-word engine by default
    /// (`Auto`, overridable at runtime with `PJ2K_TIER1=reference`), or a
    /// pinned engine for ablation. Every engine produces bit-identical
    /// codestreams (asserted in tests), so this knob never changes the
    /// output.
    pub tier1_engine: Tier1Engine,
    /// How [`ParallelMode::WorkerPool`] hands code-blocks to its workers:
    /// the paper's staggered round-robin by default, or
    /// [`Schedule::Dynamic`] self-scheduling where idle workers claim the
    /// next unprocessed blocks at runtime. The produced codestream is
    /// identical under every schedule; only the load balance changes.
    pub tier1_schedule: Schedule,
    /// Optional region of interest, prioritized with MAXSHIFT scaling.
    pub roi: Option<Roi>,
}

impl Default for EncoderConfig {
    /// The paper's defaults: 5-level 9/7, 64x64 code-blocks, no tiling,
    /// sequential execution, naive filtering, lossy at 1 bpp.
    // AUDIT(hot): config construction — once per encoder, setup-time
    // (pulled into the decode closure only via approximate call matching).
    fn default() -> Self {
        Self {
            wavelet: Wavelet::Irreversible97,
            levels: 5,
            code_block: (64, 64),
            rate: RateControl::TargetBpp(vec![1.0]),
            base_step: 1.0 / 8.0,
            tiles: None,
            parallel: ParallelMode::Sequential,
            filter: FilterStrategy::Naive,
            lifting: LiftingMode::PerStep,
            simd: SimdMode::Auto,
            overlap: StageOverlap::Barriered,
            tier1: Tier1Options::default(),
            tier1_engine: Tier1Engine::Auto,
            tier1_schedule: Schedule::StaggeredRoundRobin,
            roi: None,
        }
    }
}

/// Configuration validation failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid encoder configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl EncoderConfig {
    /// Validate the configuration.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] describing the first violated constraint.
    // AUDIT(hot): once per encoder construction; every format! is a cold
    // invalid-config error path.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let (cw, ch) = self.code_block;
        if !cw.is_power_of_two() || !ch.is_power_of_two() {
            return Err(ConfigError(format!(
                "code-block dimensions must be powers of two, got {cw}x{ch}"
            )));
        }
        if !(4..=1024).contains(&cw) || !(4..=1024).contains(&ch) {
            return Err(ConfigError(format!(
                "code-block side out of range: {cw}x{ch}"
            )));
        }
        if cw * ch > 4096 {
            return Err(ConfigError(format!(
                "code-block area {cw}x{ch} exceeds 4096 coefficients"
            )));
        }
        if self.levels > 12 {
            return Err(ConfigError(format!(
                "{} decomposition levels (max 12)",
                self.levels
            )));
        }
        if !(self.base_step.is_finite() && self.base_step > 0.0) {
            return Err(ConfigError(format!(
                "base_step must be positive, got {}",
                self.base_step
            )));
        }
        if let Some((tw, th)) = self.tiles {
            if tw == 0 || th == 0 {
                return Err(ConfigError("tile dimensions must be positive".into()));
            }
        }
        if let Some(roi) = self.roi {
            if roi.w == 0 || roi.h == 0 {
                return Err(ConfigError("ROI must have positive area".into()));
            }
        }
        if let Schedule::Dynamic { chunk: 0 } = self.tier1_schedule {
            return Err(ConfigError(
                "dynamic tier-1 schedule needs a positive chunk size".into(),
            ));
        }
        match &self.rate {
            RateControl::Lossless => {
                if self.wavelet == Wavelet::Irreversible97 {
                    return Err(ConfigError(
                        "lossless coding requires the reversible 5/3 wavelet".into(),
                    ));
                }
            }
            RateControl::TargetBpp(rates) => {
                if rates.is_empty() {
                    return Err(ConfigError("at least one layer rate required".into()));
                }
                for w in rates.windows(2) {
                    if w[0] >= w[1] {
                        return Err(ConfigError(format!(
                            "layer rates must strictly increase: {} then {}",
                            w[0], w[1]
                        )));
                    }
                }
                if rates.iter().any(|r| !(r.is_finite() && *r > 0.0)) {
                    return Err(ConfigError("layer rates must be positive".into()));
                }
            }
        }
        Ok(())
    }

    /// Number of quality layers this configuration produces.
    pub fn num_layers(&self) -> usize {
        match &self.rate {
            RateControl::Lossless => 1,
            RateControl::TargetBpp(r) => r.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let cfg = EncoderConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.levels, 5);
        assert_eq!(cfg.code_block, (64, 64));
        assert_eq!(cfg.wavelet, Wavelet::Irreversible97);
        assert!(cfg.tiles.is_none());
    }

    #[test]
    fn rejects_bad_code_blocks() {
        let mut cfg = EncoderConfig {
            code_block: (48, 64),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        cfg.code_block = (128, 64); // 8192 coefficients
        assert!(cfg.validate().is_err());
        cfg.code_block = (2, 4);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn rejects_lossless_with_97() {
        let cfg = EncoderConfig {
            rate: RateControl::Lossless,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let ok = EncoderConfig {
            rate: RateControl::Lossless,
            wavelet: Wavelet::Reversible53,
            ..Default::default()
        };
        ok.validate().unwrap();
    }

    #[test]
    fn rejects_non_increasing_layer_rates() {
        let cfg = EncoderConfig {
            rate: RateControl::TargetBpp(vec![1.0, 0.5]),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg2 = EncoderConfig {
            rate: RateControl::TargetBpp(vec![]),
            ..Default::default()
        };
        assert!(cfg2.validate().is_err());
    }

    #[test]
    fn rejects_zero_chunk_dynamic_schedule() {
        let cfg = EncoderConfig {
            tier1_schedule: Schedule::Dynamic { chunk: 0 },
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let ok = EncoderConfig {
            tier1_schedule: Schedule::Dynamic { chunk: 4 },
            ..Default::default()
        };
        ok.validate().unwrap();
    }

    #[test]
    fn stage_policy_tokens_parse() {
        assert_eq!(
            parse_stage_policy_token(" Static "),
            Some(DecodeStagePolicy::Static)
        );
        assert_eq!(
            parse_stage_policy_token("fixed"),
            Some(DecodeStagePolicy::Static)
        );
        for tok in ["cost", "Cost-Weighted", "costweighted", "dynamic"] {
            assert_eq!(
                parse_stage_policy_token(tok),
                Some(DecodeStagePolicy::CostWeighted),
                "{tok}"
            );
        }
        assert_eq!(parse_stage_policy_token("garbage"), None);
        assert_eq!(parse_stage_policy_token(""), None);
        // Forced policies resolve to themselves regardless of environment.
        assert_eq!(
            DecodeStagePolicy::Static.resolve(),
            DecodeStagePolicy::Static
        );
        assert_eq!(
            DecodeStagePolicy::CostWeighted.resolve(),
            DecodeStagePolicy::CostWeighted
        );
    }

    #[test]
    fn parallel_mode_workers() {
        assert_eq!(ParallelMode::Sequential.workers(), 1);
        assert_eq!(ParallelMode::WorkerPool { workers: 4 }.workers(), 4);
        assert_eq!(ParallelMode::Rayon { workers: 0 }.workers(), 1);
    }

    #[test]
    fn padded_width_only_pads_pow2() {
        let f = FilterStrategy::PaddedWidth;
        assert_eq!(f.stride_pad(512), 8);
        assert_eq!(f.stride_pad(500), 0);
        assert_eq!(f.stride_pad(16), 0, "small widths are cache-benign");
        assert_eq!(FilterStrategy::Naive.stride_pad(512), 0);
    }
}
