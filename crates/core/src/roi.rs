//! MAXSHIFT region-of-interest scaling (the "ROI Scaling" stage of the
//! paper's Fig. 1 coding pipeline; ISO 15444-1 Annex H).
//!
//! Encoder side: after quantization, every coefficient whose wavelet-domain
//! footprint touches the ROI is scaled up by `s`, chosen so that the
//! smallest ROI magnitude still exceeds the largest background magnitude.
//! The decoder then needs no mask: `|q| >= 2^s` means ROI. When `s` plus the
//! ROI's own magnitude depth would exceed the block coder's 31 bit-planes,
//! the residual shift `d` is taken out of the background instead
//! (`bg >>= d`) — the background is coded coarser but the ROI/background
//! separation stays exact. `(s, d)` travel in the tile header; `d = 0` is
//! plain MAXSHIFT.

use crate::config::Roi;
use pj2k_dwt::{Band, Decomposition, Subband};
use pj2k_image::Plane;

/// Margin (in coefficients) added around the mapped ROI rectangle at every
/// level, covering the 9/7 filter support.
const MARGIN: usize = 3;

/// The ROI rectangle mapped into a subband's local coefficient grid:
/// half-open `x0..x1`, `y0..y1` ranges (clamped by the caller's loops).
#[derive(Debug, Clone, Copy)]
pub(crate) struct BandRoi {
    x0: usize,
    x1: usize,
    y0: usize,
    y1: usize,
}

impl BandRoi {
    /// Map `roi` (tile pixel coordinates) into the coefficient grid of a
    /// band produced at decomposition `level` (the LL band passes
    /// `levels`).
    pub fn for_level(roi: Roi, level: u8) -> Self {
        let l = u32::from(level);
        BandRoi {
            x0: (roi.x0 >> l).saturating_sub(MARGIN),
            x1: ((roi.x0 + roi.w) >> l) + MARGIN + 1,
            y0: (roi.y0 >> l).saturating_sub(MARGIN),
            y1: ((roi.y0 + roi.h) >> l) + MARGIN + 1,
        }
    }

    /// Whether band-local coefficient `(bx, by)` is inside the mapped ROI.
    #[inline]
    pub fn contains(&self, bx: usize, by: usize) -> bool {
        (self.x0..self.x1).contains(&bx) && (self.y0..self.y1).contains(&by)
    }
}

/// The effective level of a subband for footprint mapping.
fn band_level(sb: &Subband, deco: &Decomposition) -> u8 {
    if sb.band == Band::LL {
        deco.levels
    } else {
        sb.level
    }
}

fn bits(v: u32) -> u8 {
    (32 - v.leading_zeros()) as u8
}

/// Apply MAXSHIFT scaling to a tile's quantized component planes, in place.
///
/// Returns `(s, d)` for the tile header; `(0, 0)` when the tile does not
/// intersect the ROI or the ROI covers everything.
pub(crate) fn apply_roi_shift(
    planes: &mut [Plane<i32>],
    deco: &Decomposition,
    roi: Roi,
) -> (u8, u8) {
    let bands = deco.subbands();
    // Pass 1: max magnitudes inside and outside the mapped ROI.
    let mut max_roi = 0u32;
    let mut max_bg = 0u32;
    for sb in &bands {
        if sb.is_empty() {
            continue;
        }
        let mask = BandRoi::for_level(roi, band_level(sb, deco));
        for plane in planes.iter() {
            for by in 0..sb.h {
                let row = &plane.row(sb.y0 + by)[sb.x0..sb.x0 + sb.w];
                for (bx, &q) in row.iter().enumerate() {
                    let m = q.unsigned_abs();
                    if mask.contains(bx, by) {
                        max_roi = max_roi.max(m);
                    } else {
                        max_bg = max_bg.max(m);
                    }
                }
            }
        }
    }
    if max_bg == 0 || max_roi == 0 {
        // Nothing to separate: empty background (ROI covers the tile) or
        // an all-zero ROI.
        return (0, 0);
    }
    // Background must be downshifted by `d` so that
    // s = bits(max_bg >> d) + 1 and s + bits(max_roi) <= 30.
    let budget = 30u8.saturating_sub(bits(max_roi));
    let mut d = 0u8;
    let mut s = bits(max_bg) + 1;
    while s > budget && d < 31 {
        d += 1;
        s = bits(max_bg >> d) + 1;
    }
    if s > budget {
        // Degenerate (enormous ROI magnitudes): skip ROI scaling entirely.
        return (0, 0);
    }
    // Pass 2: apply the shifts.
    for sb in &bands {
        if sb.is_empty() {
            continue;
        }
        let mask = BandRoi::for_level(roi, band_level(sb, deco));
        for plane in planes.iter_mut() {
            for by in 0..sb.h {
                let row = &mut plane.row_mut(sb.y0 + by)[sb.x0..sb.x0 + sb.w];
                for (bx, q) in row.iter_mut().enumerate() {
                    let m = q.unsigned_abs();
                    let m2 = if mask.contains(bx, by) {
                        m << s
                    } else {
                        m >> d
                    };
                    *q = if *q < 0 { -(m2 as i32) } else { m2 as i32 };
                }
            }
        }
    }
    (s, d)
}

/// Undo MAXSHIFT scaling on decoded planes: coefficients at or above `2^s`
/// are ROI (shift down by `s`), the rest are background (shift up by `d`).
pub(crate) fn undo_roi_shift(planes: &mut [Plane<i32>], s: u8, d: u8) {
    if s == 0 && d == 0 {
        return;
    }
    let threshold = 1u32 << s;
    for plane in planes.iter_mut() {
        for q in plane.raw_mut() {
            let m = q.unsigned_abs();
            let m2 = if m >= threshold { m >> s } else { m << d };
            *q = if *q < 0 { -(m2 as i32) } else { m2 as i32 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roi() -> Roi {
        Roi {
            x0: 16,
            y0: 16,
            w: 8,
            h: 8,
        }
    }

    #[test]
    fn band_mapping_shrinks_with_level() {
        let r0 = BandRoi::for_level(roi(), 0);
        let r2 = BandRoi::for_level(roi(), 2);
        assert!(r0.contains(16, 16));
        assert!(!r0.contains(40, 16));
        assert!(r2.contains(4, 4)); // 16 >> 2
        assert!(r2.contains(6 + MARGIN, 6)); // margin applies
        assert!(!r2.contains(7 + MARGIN, 6));
    }

    #[test]
    fn shift_roundtrip_is_exact() {
        let deco = Decomposition::new(32, 32, 2);
        let mut p = Plane::from_fn(32, 32, |x, y| ((x * 7 + y * 5) % 41) as i32 - 20);
        let orig = p.clone();
        let mut planes = vec![p.clone()];
        let (s, d) = apply_roi_shift(&mut planes, &deco, roi());
        assert!(s > 0, "separation should engage");
        assert_eq!(d, 0, "small magnitudes need no background downshift");
        // ROI coefficients strictly dominate background.
        let threshold = 1i32 << s;
        let mut saw_roi = false;
        for v in planes[0].samples() {
            if v.abs() >= threshold {
                saw_roi = true;
            }
        }
        assert!(saw_roi);
        undo_roi_shift(&mut planes, s, d);
        p = planes.pop().unwrap();
        assert_eq!(p, orig, "lossless inverse");
    }

    #[test]
    fn background_downshift_engages_for_deep_magnitudes() {
        // Huge magnitudes force the MAXSHIFT budget past 30 planes, so the
        // residual shift must come out of the background (d > 0).
        let deco = Decomposition::new(64, 64, 1);
        let p = Plane::from_fn(64, 64, |_, _| 1 << 22);
        let mut planes = vec![p];
        let small = Roi {
            x0: 28,
            y0: 28,
            w: 8,
            h: 8,
        };
        let (s, d) = apply_roi_shift(&mut planes, &deco, small);
        assert!(
            s > 0 && d > 0,
            "expected background downshift, got s={s} d={d}"
        );
        // Separation holds: every magnitude is either >= 2^s (ROI) or the
        // downshifted background, which stays below 2^(s-1).
        let threshold = 1u32 << s;
        for v in planes[0].samples() {
            let m = v.unsigned_abs();
            assert!(
                m >= threshold || m < threshold / 2 + 1,
                "ambiguous magnitude {m} vs threshold {threshold}"
            );
        }
        // Inverse: ROI exact, background loses its low d bits.
        undo_roi_shift(&mut planes, s, d);
        let back = &planes[0];
        let mask_l1 = BandRoi::for_level(small, 1);
        for y in 0..64usize {
            for x in 0..64usize {
                let expect_exact = mask_l1.contains(x % 32, y % 32);
                let v = back.get(x, y) as u32;
                if expect_exact {
                    // ROI cells round-trip exactly.
                    if mask_l1.contains(x.min(31), y.min(31)) && x < 32 && y < 32 {
                        assert_eq!(v, 1 << 22, "ROI cell ({x},{y})");
                    }
                } else {
                    assert_eq!(v, ((1u32 << 22) >> d) << d, "background cell ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn all_zero_or_full_roi_disables() {
        let deco = Decomposition::new(8, 8, 1);
        let mut planes = vec![Plane::<i32>::new(8, 8)];
        assert_eq!(
            apply_roi_shift(&mut planes, &deco, roi()),
            (0, 0),
            "zero plane"
        );
        let mut planes = vec![Plane::from_fn(8, 8, |_, _| 5)];
        let full = Roi {
            x0: 0,
            y0: 0,
            w: 8,
            h: 8,
        };
        assert_eq!(
            apply_roi_shift(&mut planes, &deco, full),
            (0, 0),
            "margins swallow the whole tile: no background"
        );
    }
}
