//! Untrusted-input hardening: byte-level mutation sweeps over valid
//! codestreams (DESIGN.md §9).
//!
//! Every test here asserts the same contract: `Decoder::decode` over
//! arbitrary corrupted bytes returns `Ok` or `Err` — it never panics and
//! never attempts an input-disproportionate allocation. The harness is
//! dependency-free (deterministic xorshift mutations) so it runs on
//! offline builders; `prop_hardening.rs` layers proptest shrinking on top
//! of the same properties.

use pj2k_core::{Decoder, Encoder, EncoderConfig, ParallelMode, RateControl, StageOverlap};
use pj2k_dwt::Wavelet;
use pj2k_image::synth;

/// Deterministic xorshift64* PRNG — no `rand` dependency, reproducible
/// failures (the seed is printed in every assertion message).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Small but structurally rich corpus: tiles, layers, both wavelets, and
/// the Tier-1 coding-style variations all exercise different header paths.
fn corpus() -> Vec<Vec<u8>> {
    let gray = synth::natural_gray(48, 40, 3);
    let rgb = synth::natural_rgb(32, 32, 5);
    let configs = [
        EncoderConfig {
            wavelet: Wavelet::Reversible53,
            rate: RateControl::Lossless,
            levels: 3,
            ..Default::default()
        },
        EncoderConfig {
            rate: RateControl::TargetBpp(vec![0.5, 2.0]),
            levels: 2,
            tiles: Some((32, 32)),
            ..Default::default()
        },
    ];
    let mut out = Vec::new();
    for cfg in configs {
        out.push(Encoder::new(cfg.clone()).unwrap().encode(&gray).0);
        out.push(Encoder::new(cfg).unwrap().encode(&rgb).0);
    }
    out
}

fn decode_must_not_panic(bytes: &[u8], what: &str) {
    // The contract is the *absence of a panic* (and of an OOM abort): both
    // Ok and Err are acceptable outcomes for corrupted input.
    let _ = Decoder::default().decode(bytes);
    // Exercised a second time through the worker-pool path, which touches
    // the parallel Tier-1 branches.
    let dec = Decoder {
        parallel: ParallelMode::WorkerPool { workers: 2 },
        ..Default::default()
    };
    if let Err(e) = dec.decode(bytes) {
        // Errors must render without panicking too.
        let _ = format!("{what}: {e}");
    }
    // And a third time through the staged decode pipeline, whose error
    // paths (parse failure with parked Tier-1 workers, worker failure
    // with the DWT driver waiting on a gate) are disjoint from the
    // barriered ones; `decode_pipeline_shutdown.rs` adds deadline guards
    // on top of the same corpus.
    let dec = Decoder {
        parallel: ParallelMode::WorkerPool { workers: 3 },
        overlap: StageOverlap::Pipelined,
        ..Default::default()
    };
    let _ = dec.decode(bytes);
}

#[test]
fn truncation_sweep_never_panics() {
    for (ci, stream) in corpus().iter().enumerate() {
        for cut in 0..stream.len() {
            let _ = Decoder::default().decode(&stream[..cut]);
        }
        // Over-long input (trailing garbage) must error cleanly, not read
        // past the logical end.
        let mut extended = stream.clone();
        extended.extend_from_slice(&[0xFF; 64]);
        decode_must_not_panic(&extended, &format!("corpus {ci} extended"));
    }
}

#[test]
fn bit_flip_sweep_never_panics() {
    let corpus = corpus();
    let mut rng = Rng(0x5EED_0001);
    let mut tried = 0usize;
    while tried < 6_000 {
        let stream = &corpus[rng.below(corpus.len())];
        let mut bytes = stream.clone();
        // 1..=4 independent bit flips per mutant.
        for _ in 0..=rng.below(3) {
            let i = rng.below(bytes.len());
            bytes[i] ^= 1 << rng.below(8);
        }
        decode_must_not_panic(&bytes, &format!("bit-flip seed iter {tried}"));
        tried += 1;
    }
}

#[test]
fn byte_splice_sweep_never_panics() {
    let corpus = corpus();
    let mut rng = Rng(0x5EED_0002);
    for iter in 0..2_000 {
        let a = &corpus[rng.below(corpus.len())];
        let b = &corpus[rng.below(corpus.len())];
        // Random prefix of a + random suffix of b: valid marker structure
        // with inconsistent bodies.
        let cut_a = rng.below(a.len());
        let cut_b = rng.below(b.len());
        let mut bytes = a[..cut_a].to_vec();
        bytes.extend_from_slice(&b[cut_b..]);
        decode_must_not_panic(&bytes, &format!("splice iter {iter}"));
    }
}

#[test]
fn length_field_corruption_never_panics() {
    // Marker-segment length fields are the classic parser attack surface:
    // walk the stream, find each 0xFF-marker, and clobber the two length
    // bytes that follow with adversarial values.
    let corpus = corpus();
    let mut count = 0usize;
    for stream in &corpus {
        for i in 0..stream.len().saturating_sub(3) {
            if stream[i] != 0xFF {
                continue;
            }
            for val in [0u16, 1, 2, 3, 0x00FF, 0x7FFF, 0xFFFF] {
                let mut bytes = stream.clone();
                bytes[i + 2] = (val >> 8) as u8;
                bytes[i + 3] = (val & 0xFF) as u8;
                decode_must_not_panic(&bytes, &format!("len {val:#x} at {i}"));
                count += 1;
            }
        }
    }
    // Valid streams contain few 0xFF bytes (MQ byte-stuffing avoids
    // emitting them), so the position count is modest; ~1.2k mutants in
    // practice. The floor just catches a degenerate corpus.
    assert!(count > 500, "corpus too small to be meaningful: {count}");
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = Rng(0x5EED_0003);
    for iter in 0..2_000 {
        let len = rng.below(512);
        let mut bytes = vec![0u8; len];
        for b in bytes.iter_mut() {
            *b = (rng.next() >> 32) as u8;
        }
        decode_must_not_panic(&bytes, &format!("garbage iter {iter}"));
    }
    // All-0xFF strings of every length: nothing but marker prefixes.
    for len in 0..256 {
        let bytes = vec![0xFFu8; len];
        decode_must_not_panic(&bytes, &format!("all-FF len {len}"));
    }
}

#[test]
fn untouched_streams_decode_bit_identically() {
    for stream in corpus() {
        let (a, _) = Decoder::default().decode(&stream).expect("valid stream");
        let (b, _) = Decoder::default().decode(&stream).expect("valid stream");
        assert_eq!(a, b, "repeated decodes must agree bit-for-bit");
        let dec = Decoder {
            parallel: ParallelMode::Rayon { workers: 2 },
            ..Default::default()
        };
        let (c, _) = dec.decode(&stream).expect("valid stream");
        assert_eq!(a, c, "parallel decode must agree bit-for-bit");
        let dec = Decoder {
            parallel: ParallelMode::WorkerPool { workers: 4 },
            overlap: StageOverlap::Pipelined,
            ..Default::default()
        };
        let (d, _) = dec.decode(&stream).expect("valid stream");
        assert_eq!(a, d, "pipelined decode must agree bit-for-bit");
    }
}

/// Corpus exporter for the fuzzing harness: `fuzz/seed_corpus.sh` runs
/// this (ignored) test with `PJ2K_SEED_DIR` set to drop the same encoded
/// streams the mutation sweeps use into the cargo-fuzz corpus directory.
#[test]
#[ignore = "only run by fuzz/seed_corpus.sh to export the seed corpus"]
fn write_fuzz_seed_corpus() {
    let dir = std::env::var("PJ2K_SEED_DIR").expect("PJ2K_SEED_DIR must point at the corpus dir");
    for (i, stream) in corpus().iter().enumerate() {
        std::fs::write(format!("{dir}/seed-{i}.j2k"), stream).expect("write seed");
    }
}

// --- regression fixtures ---------------------------------------------------
// Each fixture is a minimal input that triggered a panic or an unbounded
// allocation in a pre-hardening decoder. They are kept as explicit byte
// sequences so the exact bad input stays pinned even if the writers evolve.

mod fixtures {
    use pj2k_core::Decoder;
    use pj2k_tier2::codestream::{self, MarkerWriter, PayloadWriter};

    fn header(w: u32, h: u32, tiles: (u32, u32), cb: (u16, u16)) -> MarkerWriter {
        let mut m = MarkerWriter::new();
        m.marker(codestream::SOC);
        let mut p = PayloadWriter::new();
        p.u32(w);
        p.u32(h);
        p.u8(1);
        p.u8(8);
        p.u8(0);
        p.u32(tiles.0);
        p.u32(tiles.1);
        m.segment(codestream::SIZ, &p.finish());
        let mut p = PayloadWriter::new();
        p.u8(0);
        p.u8(2);
        p.u16(cb.0);
        p.u16(cb.1);
        p.u16(1);
        p.u8(0);
        m.segment(codestream::COD, &p.finish());
        let mut p = PayloadWriter::new();
        p.f64(0.5);
        m.segment(codestream::QCD, &p.finish());
        m
    }

    /// Pre-hardening, a zero-length COD payload made the parser read
    /// fields past the segment end (`expect_segment` accepted any
    /// `len >= 2`).
    #[test]
    fn empty_cod_payload_errors_cleanly() {
        let bytes: &[u8] = &[
            0xFF, 0x4F, // SOC
            0xFF, 0x51, 0x00, 0x15, // SIZ, len 21 (19-byte payload)
            0, 0, 0, 16, 0, 0, 0, 16, 1, 8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0x52, 0x00,
            0x02, // COD with EMPTY payload
            0xFF, 0xD9, // EOC
        ];
        assert!(Decoder::default().decode(bytes).is_err());
    }

    /// Same for QCD: an empty quantization segment must not underflow the
    /// payload reader.
    #[test]
    fn empty_qcd_payload_errors_cleanly() {
        let bytes: &[u8] = &[
            0xFF, 0x4F, // SOC
            0xFF, 0x51, 0x00, 0x15, // SIZ
            0, 0, 0, 16, 0, 0, 0, 16, 1, 8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0x52, 0x00,
            0x0B, // COD, 9-byte payload
            0, 2, 0, 64, 0, 64, 0, 1, 0, //
            0xFF, 0x5C, 0x00, 0x02, // QCD with EMPTY payload
            0xFF, 0xD9, // EOC
        ];
        assert!(Decoder::default().decode(bytes).is_err());
    }

    /// A segment whose declared length runs past the end of the stream.
    #[test]
    fn overrunning_segment_length_errors_cleanly() {
        let bytes: &[u8] = &[
            0xFF, 0x4F, // SOC
            0xFF, 0x51, 0xFF, 0xFF, // SIZ claiming a 65533-byte payload
            1, 2, 3,
        ];
        assert!(Decoder::default().decode(bytes).is_err());
    }

    /// Pre-hardening, a header claiming a maximal image over 1x1 tiles
    /// reserved 2^28 tile slots up front; it must now fail on the missing
    /// tile data without ballooning memory.
    #[test]
    fn huge_tile_grid_fails_fast() {
        let bytes = header(16384, 16384, (1, 1), (64, 64)).finish();
        assert!(Decoder::default().decode(&bytes).is_err());
    }

    /// A maximal untiled image with minimal 4x4 code-blocks describes
    /// ~2^24 blocks in a ~60-byte stream; the block budget must reject it
    /// before any per-block state is allocated.
    #[test]
    fn implausible_block_count_fails_fast() {
        let mut m = header(16384, 16384, (0, 0), (4, 4));
        let mut p = PayloadWriter::new();
        p.u32(0);
        p.u32(0);
        m.segment(codestream::SOT, &p.finish());
        m.marker(codestream::SOD);
        m.marker(codestream::EOC);
        assert!(Decoder::default().decode(&m.finish()).is_err());
    }

    /// Tile body full of 0xEF/0x7F patterns: an implausible Kmax table
    /// followed by packet headers that keep the "another pass" and
    /// "Lblock grows" bits set (the pattern that drove the pre-hardening
    /// Lblock accumulator up without bound — see the packet-level
    /// regression test `runaway_lblock_is_an_error_not_garbage`).
    #[test]
    fn runaway_lblock_errors_cleanly() {
        let mut m = header(16, 16, (0, 0), (64, 64));
        let mut p = PayloadWriter::new();
        p.u32(0);
        p.u32(64);
        m.segment(codestream::SOT, &p.finish());
        m.marker(codestream::SOD);
        let mut bytes = m.finish();
        bytes.extend((0..32).flat_map(|_| [0xEF, 0x7F]));
        bytes.extend_from_slice(&[0xFF, 0xD9]);
        assert!(Decoder::default().decode(&bytes).is_err());
    }
}
