//! Property tests for the full codec: lossless exactness on arbitrary
//! inputs, lossy totality, and decoder robustness against corruption.

use pj2k_core::config::Tier1Engine;
use pj2k_core::{
    DecodeStagePolicy, Decoder, Encoder, EncoderConfig, ParallelMode, RateControl, Schedule,
    StageOverlap, Wavelet,
};
use pj2k_image::{metrics, Image, Plane};
use proptest::prelude::*;

#[allow(clippy::type_complexity)]
fn arb_image() -> impl Strategy<Value = Image> {
    (1usize..48, 1usize..48, any::<u64>()).prop_map(|(w, h, seed)| {
        let mut state = seed | 1;
        Image::gray8(Plane::from_fn(w, h, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 256) as i32
        }))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lossless coding is bit exact for any image content, size, level
    /// count and code-block shape.
    #[test]
    fn lossless_always_exact(
        img in arb_image(),
        levels in 0u8..6,
        cb_pow in 2u32..7,
    ) {
        let cb = 1usize << cb_pow;
        let cfg = EncoderConfig {
            wavelet: Wavelet::Reversible53,
            rate: RateControl::Lossless,
            levels,
            code_block: (cb, (4096 / cb).clamp(4, 64)),
            ..EncoderConfig::default()
        };
        let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        prop_assert_eq!(metrics::max_abs_error(&img, &out), 0);
    }

    /// Lossy coding is total and quality is bounded below at decent rates.
    #[test]
    fn lossy_is_total_and_sane(img in arb_image(), bpp in 0.1f64..6.0) {
        let cfg = EncoderConfig {
            rate: RateControl::TargetBpp(vec![bpp]),
            levels: 3,
            ..EncoderConfig::default()
        };
        let (bytes, report) = Encoder::new(cfg).unwrap().encode(&img);
        prop_assert!(report.bytes == bytes.len());
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        prop_assert_eq!(out.width(), img.width());
        prop_assert_eq!(out.height(), img.height());
        // Reconstruction stays in range (clamped to depth).
        for v in out.component(0).samples() {
            prop_assert!((0..=255).contains(&v));
        }
    }

    /// Truncating the stream anywhere yields an error, never a panic.
    #[test]
    fn decoder_survives_truncation(img in arb_image(), frac in 0.0f64..1.0) {
        let cfg = EncoderConfig {
            levels: 2,
            ..EncoderConfig::default()
        };
        let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
        let cut = ((bytes.len() as f64) * frac) as usize;
        let _ = Decoder::default().decode(&bytes[..cut]);
    }

    /// Flipping a byte anywhere yields either an error or a decoded image,
    /// never a panic (decoder totality under corruption).
    #[test]
    fn decoder_survives_corruption(
        img in arb_image(),
        pos_seed in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let cfg = EncoderConfig {
            levels: 2,
            ..EncoderConfig::default()
        };
        let (mut bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
        if bytes.is_empty() {
            return Ok(());
        }
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= xor;
        let _ = Decoder::default().decode(&bytes);
    }

    /// The staged decode pipeline (DESIGN.md §15) is bit-identical to the
    /// sequential barriered decoder for arbitrary image content, worker
    /// counts, schedules, stage policies, and Tier-1 engines — overlap
    /// and dynamic repartitioning must never change a pixel.
    #[test]
    fn pipelined_decode_matches_sequential(
        img in arb_image(),
        levels in 0u8..5,
        workers in 1usize..5,
        chunk in 1usize..9,
        dynamic in any::<bool>(),
        cost_weighted in any::<bool>(),
        reference_engine in any::<bool>(),
        lossless in any::<bool>(),
    ) {
        let cfg = EncoderConfig {
            wavelet: if lossless { Wavelet::Reversible53 } else { Wavelet::Irreversible97 },
            rate: if lossless {
                RateControl::Lossless
            } else {
                RateControl::TargetBpp(vec![1.5])
            },
            levels,
            tier1_engine: if reference_engine {
                Tier1Engine::Reference
            } else {
                Tier1Engine::Bitplane
            },
            ..EncoderConfig::default()
        };
        let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
        let (sequential, _) = Decoder::default().decode(&bytes).unwrap();
        let dec = Decoder {
            parallel: ParallelMode::WorkerPool { workers },
            overlap: StageOverlap::Pipelined,
            tier1_schedule: if dynamic {
                Schedule::Dynamic { chunk }
            } else {
                Schedule::StaggeredRoundRobin
            },
            stage_policy: if cost_weighted {
                DecodeStagePolicy::CostWeighted
            } else {
                DecodeStagePolicy::Static
            },
            ..Decoder::default()
        };
        let (pipelined, report) = dec.decode(&bytes).unwrap();
        prop_assert_eq!(&sequential, &pipelined);
        prop_assert!(report.num_blocks > 0);
    }

    /// The codestream is deterministic: same input, same bytes.
    #[test]
    fn encoding_is_deterministic(img in arb_image()) {
        let cfg = EncoderConfig {
            levels: 3,
            ..EncoderConfig::default()
        };
        let enc = Encoder::new(cfg).unwrap();
        let (a, _) = enc.encode(&img);
        let (b, _) = enc.encode(&img);
        prop_assert_eq!(a, b);
    }
}
