//! Proptest layer of the untrusted-input hardening harness.
//!
//! `hardening.rs` sweeps deterministic mutation families; this file lets
//! proptest explore (and shrink!) the same mutation space: arbitrary
//! truncations, bit flips, byte splices and length-field rewrites of valid
//! codestreams must yield `Ok` or `Err` from `Decoder::decode` — never a
//! panic. Shrinking matters here: when a mutant does panic, proptest
//! reduces it to a minimal reproducer worth pinning in `hardening.rs`'s
//! fixture module.

use pj2k_core::{Decoder, Encoder, EncoderConfig, ParallelMode, RateControl};
use pj2k_dwt::Wavelet;
use pj2k_image::synth;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Encoded corpus, built once per process: the same structurally diverse
/// streams as `hardening.rs` (tiles, layers, both wavelets).
fn corpus() -> &'static [Vec<u8>] {
    static CORPUS: OnceLock<Vec<Vec<u8>>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        let gray = synth::natural_gray(48, 40, 3);
        let rgb = synth::natural_rgb(32, 32, 5);
        let configs = [
            EncoderConfig {
                wavelet: Wavelet::Reversible53,
                rate: RateControl::Lossless,
                levels: 3,
                ..Default::default()
            },
            EncoderConfig {
                rate: RateControl::TargetBpp(vec![0.5, 2.0]),
                levels: 2,
                tiles: Some((32, 32)),
                ..Default::default()
            },
        ];
        let mut out = Vec::new();
        for cfg in configs {
            out.push(Encoder::new(cfg.clone()).unwrap().encode(&gray).0);
            out.push(Encoder::new(cfg).unwrap().encode(&rgb).0);
        }
        out
    })
}

/// Decode under both the sequential and a parallel execution mode; the
/// property is the absence of a panic, not a particular outcome.
fn decode_both(bytes: &[u8]) {
    let _ = Decoder::default().decode(bytes);
    let dec = Decoder {
        parallel: ParallelMode::WorkerPool { workers: 2 },
        ..Default::default()
    };
    if let Err(e) = dec.decode(bytes) {
        let _ = format!("{e}"); // errors must also render cleanly
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary truncation of a valid stream never panics.
    #[test]
    fn truncated_stream_never_panics(which in 0usize..4, frac in 0.0f64..1.0) {
        let stream = &corpus()[which];
        let cut = ((stream.len() as f64) * frac) as usize;
        decode_both(&stream[..cut.min(stream.len())]);
    }

    /// Up to 8 independent bit flips anywhere in the stream never panic.
    #[test]
    fn bit_flipped_stream_never_panics(
        which in 0usize..4,
        flips in proptest::collection::vec((any::<prop::sample::Index>(), 0u8..8), 1..8),
    ) {
        let mut bytes = corpus()[which].clone();
        for (idx, bit) in flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= 1 << bit;
        }
        decode_both(&bytes);
    }

    /// Overwriting a random window with arbitrary bytes never panics.
    #[test]
    fn spliced_stream_never_panics(
        which in 0usize..4,
        at in any::<prop::sample::Index>(),
        patch in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut bytes = corpus()[which].clone();
        let start = at.index(bytes.len());
        for (i, b) in patch.into_iter().enumerate() {
            if let Some(slot) = bytes.get_mut(start + i) {
                *slot = b;
            }
        }
        decode_both(&bytes);
    }

    /// Rewriting the 16-bit word after any 0xFF byte (i.e. candidate
    /// marker-segment length fields) never panics.
    #[test]
    fn corrupted_length_field_never_panics(
        which in 0usize..4,
        at in any::<prop::sample::Index>(),
        val in any::<u16>(),
    ) {
        let mut bytes = corpus()[which].clone();
        let positions: Vec<usize> = bytes
            .iter()
            .enumerate()
            .filter(|&(i, &b)| b == 0xFF && i + 3 < bytes.len())
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!positions.is_empty());
        let i = positions[at.index(positions.len())];
        bytes[i + 2] = (val >> 8) as u8;
        bytes[i + 3] = (val & 0xFF) as u8;
        decode_both(&bytes);
    }

    /// Pure random bytes (no valid structure at all) never panic.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        decode_both(&bytes);
    }

    /// Untouched corpus streams keep decoding bit-identically, including
    /// across execution modes — the hardening work must not perturb the
    /// happy path.
    #[test]
    fn untouched_streams_stay_bit_identical(which in 0usize..4, workers in 1usize..4) {
        let stream = &corpus()[which];
        let (a, _) = Decoder::default().decode(stream).expect("valid stream");
        let dec = Decoder {
            parallel: ParallelMode::Rayon { workers },
            ..Default::default()
        };
        let (b, _) = dec.decode(stream).expect("valid stream");
        prop_assert_eq!(a, b);
    }
}
