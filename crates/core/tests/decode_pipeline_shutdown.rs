//! Shutdown- and error-path tests for the *pipelined decoder* (DESIGN.md
//! §15): the decode-side mirror of `crates/parutil/tests/pipeline_shutdown.rs`.
//!
//! The happy path (bit-identity against the barriered decoder) is covered
//! by unit and property tests; these tests pin down what happens when a
//! pipelined run ends *abnormally* — the Tier-2 parser errors with Tier-1
//! workers already parked on the block queue, a worker hits a corrupt
//! segment mid-drain, the driver is waiting on a resolution level that
//! will never complete. The contract in every case: `decode` returns
//! `Err(CodecError)` in bounded time — it never hangs, never panics, and
//! never leaks a parked worker (the scoped executor cannot return while
//! one is still blocked, so "returns at all" doubles as the leak check).

use pj2k_core::{
    Decoder, Encoder, EncoderConfig, ParallelMode, RateControl, StageOverlap, Wavelet,
};
use pj2k_image::synth;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;

/// Deterministic xorshift64* PRNG — no `rand` dependency, reproducible
/// failures (mirrors `hardening.rs`).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A decoder routed through the staged pipeline: Tier-2 parse feeding a
/// block queue drained by `workers` Tier-1 threads, with the inverse DWT
/// overlapping on the driver.
fn pipelined(workers: usize) -> Decoder {
    Decoder {
        parallel: ParallelMode::WorkerPool { workers },
        overlap: StageOverlap::Pipelined,
        ..Decoder::default()
    }
}

/// Run `f` on a helper thread and fail if it has not finished within
/// `secs`. A parked Tier-1 worker or a driver stuck on the reassembly
/// gate shows up as a deadline miss here instead of a CI-wide timeout.
fn with_deadline<F>(secs: u64, what: &str, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let runner = thread::spawn(move || {
        f();
        // The receiver only disappears after a verdict; ignore the
        // impossible send error rather than panicking in teardown.
        let _ = tx.send(());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(()) => runner.join().expect("deadline body must not panic"),
        Err(_) => panic!("{what}: exceeded {secs}s — a pipelined decode worker is likely parked"),
    }
}

/// Small but structurally rich corpus: multiple levels, both wavelets,
/// layers, and tiles all reach different pipelined stages (parse, drain,
/// per-level DWT hand-off).
fn corpus() -> Vec<Vec<u8>> {
    let gray = synth::natural_gray(48, 40, 3);
    let rgb = synth::natural_rgb(32, 32, 5);
    let configs = [
        EncoderConfig {
            wavelet: Wavelet::Reversible53,
            rate: RateControl::Lossless,
            levels: 3,
            ..Default::default()
        },
        EncoderConfig {
            rate: RateControl::TargetBpp(vec![0.5, 2.0]),
            levels: 2,
            tiles: Some((32, 32)),
            ..Default::default()
        },
    ];
    let mut out = Vec::new();
    for cfg in configs {
        out.push(Encoder::new(cfg.clone()).unwrap().encode(&gray).0);
        out.push(Encoder::new(cfg).unwrap().encode(&rgb).0);
    }
    out
}

#[test]
fn truncation_sweep_terminates_at_every_cut() {
    // Every prefix of every corpus stream: early cuts die in the header
    // parser before the pipeline spins up; late cuts error *inside* the
    // producer with workers already parked on the queue — the case the
    // parse-failure gate exists for.
    with_deadline(120, "truncation sweep", || {
        for (ci, stream) in corpus().iter().enumerate() {
            for cut in 0..stream.len() {
                let r = pipelined(3).decode(&stream[..cut]);
                assert!(
                    r.is_err(),
                    "corpus {ci} cut {cut}: truncated stream decoded Ok"
                );
            }
        }
    });
}

#[test]
fn bit_flip_mutants_never_hang_the_pipeline() {
    // Corrupt segment bytes typically surface in a Tier-1 *worker* (MQ
    // decoder error mid-drain), not the producer: the worker must flip
    // the shared failure flag, the remaining workers must drain-and-drop,
    // and the driver must observe the gate error — all without a join
    // that never comes.
    with_deadline(120, "bit-flip sweep", || {
        let corpus = corpus();
        let mut rng = Rng(0xDECD_0001);
        for _ in 0..1_500 {
            let stream = &corpus[rng.below(corpus.len())];
            let mut bytes = stream.clone();
            for _ in 0..=rng.below(3) {
                let i = rng.below(bytes.len());
                bytes[i] ^= 1 << rng.below(8);
            }
            let _ = pipelined(2).decode(&bytes);
        }
    });
}

#[test]
fn length_field_corruption_drains_cleanly() {
    // Clobbered marker-segment lengths make the Tier-2 cursor run out
    // mid-packet — the parse error must release both the queue (so
    // workers see `None`) and the gate (so the driver's per-level wait
    // bails) on every mutant.
    with_deadline(120, "length-field sweep", || {
        for stream in &corpus() {
            for i in 0..stream.len().saturating_sub(3) {
                if stream[i] != 0xFF {
                    continue;
                }
                for val in [0u16, 3, 0x00FF, 0xFFFF] {
                    let mut bytes = stream.clone();
                    bytes[i + 2] = (val >> 8) as u8;
                    bytes[i + 3] = (val & 0xFF) as u8;
                    let _ = pipelined(4).decode(&bytes);
                }
            }
        }
    });
}

#[test]
fn late_parse_error_unparks_waiting_workers() {
    // Cut each stream at 85% of its length: headers and early packets
    // parse fine, jobs are already flowing, then the producer errors with
    // the drive closure blocked on a reassembly slot that will never
    // fill. Repeated runs shake out interleavings where the error lands
    // before/after workers park.
    with_deadline(120, "late-parse-error runs", || {
        let corpus = corpus();
        for stream in &corpus {
            let cut = stream.len() * 85 / 100;
            for run in 0..40 {
                let workers = 2 + (run % 3);
                let r = pipelined(workers).decode(&stream[..cut]);
                assert!(r.is_err(), "85% prefix decoded Ok on run {run}");
            }
        }
    });
}

#[test]
fn garbage_and_empty_inputs_error_before_spawning() {
    with_deadline(60, "garbage inputs", || {
        let mut rng = Rng(0xDECD_0002);
        assert!(pipelined(4).decode(&[]).is_err());
        for len in 0..128 {
            let bytes = vec![0xFFu8; len];
            assert!(pipelined(4).decode(&bytes).is_err(), "all-FF len {len}");
        }
        for iter in 0..500 {
            let len = rng.below(384);
            let mut bytes = vec![0u8; len];
            for b in bytes.iter_mut() {
                *b = (rng.next() >> 32) as u8;
            }
            let _ = pipelined(3).decode(&bytes);
            let _ = iter;
        }
    });
}

#[test]
fn repeated_pipelined_decodes_stay_bit_identical() {
    // Drop/reuse path: back-to-back pipelined runs on the same process
    // must neither accumulate state nor drift from the sequential
    // barriered reference (each run builds and tears down its own queue,
    // gate, and band buffers).
    with_deadline(120, "repeated valid decodes", || {
        for stream in corpus() {
            let (reference, _) = Decoder::default().decode(&stream).expect("valid stream");
            for run in 0..12 {
                let (img, report) = pipelined(1 + run % 4)
                    .decode(&stream)
                    .expect("valid stream via pipeline");
                assert_eq!(img, reference, "pipelined run {run} diverged");
                assert!(report.num_blocks > 0, "pipeline decoded no blocks");
            }
        }
    });
}
