//! Property tests: the MQ coder must round-trip any decision stream over
//! any context usage pattern, and its output must be marker-free.

use pj2k_mq::{CtxState, MqDecoder, MqEncoder};
use proptest::prelude::*;

fn arb_stream() -> impl Strategy<Value = Vec<(usize, u8)>> {
    proptest::collection::vec((0usize..19, 0u8..2), 0..4000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn roundtrip_any_stream(stream in arb_stream()) {
        let mut enc_ctx = [CtxState::default(); 19];
        let mut enc = MqEncoder::new();
        for &(c, d) in &stream {
            enc.encode(&mut enc_ctx[c], d);
        }
        let bytes = enc.flush();
        let mut dec_ctx = [CtxState::default(); 19];
        let mut dec = MqDecoder::new(&bytes);
        for (i, &(c, d)) in stream.iter().enumerate() {
            prop_assert_eq!(dec.decode(&mut dec_ctx[c]), d, "decision {}", i);
        }
    }

    /// Initial context index choices must not break the roundtrip.
    #[test]
    fn roundtrip_with_custom_initial_states(
        stream in proptest::collection::vec((0usize..3, 0u8..2), 0..1500),
        idx in proptest::array::uniform3(0u8..47),
    ) {
        let init = [CtxState::new(idx[0]), CtxState::new(idx[1]), CtxState::new(idx[2])];
        let mut enc_ctx = init;
        let mut enc = MqEncoder::new();
        for &(c, d) in &stream {
            enc.encode(&mut enc_ctx[c], d);
        }
        let bytes = enc.flush();
        let mut dec_ctx = init;
        let mut dec = MqDecoder::new(&bytes);
        for &(c, d) in &stream {
            prop_assert_eq!(dec.decode(&mut dec_ctx[c]), d);
        }
    }

    /// A terminated segment never contains a marker-range byte pair
    /// (0xFF followed by > 0x8F), so segments can be concatenated in
    /// packets safely.
    #[test]
    fn no_marker_pairs(stream in arb_stream()) {
        let mut ctx = [CtxState::default(); 19];
        let mut enc = MqEncoder::new();
        for &(c, d) in &stream {
            enc.encode(&mut ctx[c], d);
        }
        let bytes = enc.flush();
        for pair in bytes.windows(2) {
            if pair[0] == 0xFF {
                prop_assert!(pair[1] <= 0x8F, "marker {:02X}{:02X}", pair[0], pair[1]);
            }
        }
        prop_assert_ne!(bytes.last().copied(), Some(0xFF), "no trailing 0xFF");
    }

    /// The upper bound estimate never undershoots the flushed size.
    #[test]
    fn bytes_upper_bound_holds(stream in arb_stream()) {
        let mut ctx = [CtxState::default(); 19];
        let mut enc = MqEncoder::new();
        for &(c, d) in &stream {
            enc.encode(&mut ctx[c], d);
        }
        let bound = enc.bytes_upper_bound();
        prop_assert!(enc.flush().len() <= bound);
    }

    /// Decoding with the wrong byte stream must not panic (garbage in,
    /// garbage out — but total).
    #[test]
    fn decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut ctx = CtxState::default();
        let mut dec = MqDecoder::new(&bytes);
        for _ in 0..1000 {
            let d = dec.decode(&mut ctx);
            prop_assert!(d <= 1);
        }
    }

    /// Context adaptation compresses a biased stream below 1 bit/decision.
    #[test]
    fn biased_streams_compress(bias in 4u32..64) {
        let n = 4000u32;
        let mut ctx = CtxState::default();
        let mut enc = MqEncoder::new();
        for i in 0..n {
            enc.encode(&mut ctx, u8::from(i % bias == 0));
        }
        let bytes = enc.flush();
        prop_assert!((bytes.len() as u32) * 8 < n, "{} bytes for {} biased decisions", bytes.len(), n);
    }
}
