//! Raw (uncoded) bit segments for the selective-bypass mode.
//!
//! In "lazy" / bypass coding, the significance-propagation and
//! magnitude-refinement passes of the lower bit-planes skip the MQ coder
//! entirely: decisions are emitted as raw bits, with the same
//! marker-avoidance rule as everywhere else in the codestream (a byte of
//! `0xFF` is followed by a 7-bit byte whose MSB is 0).

/// Raw bit writer with `0xFF` stuffing.
#[derive(Debug, Default)]
pub struct RawEncoder {
    out: Vec<u8>,
    acc: u8,
    filled: u8,
    nbits: u8,
    /// Bits written into this segment (profiling; no effect on output).
    decisions: u64,
}

impl RawEncoder {
    /// Fresh raw segment.
    // AUDIT(hot): setup-time — empty vec, no heap; hot loops recycle
    // via `from_recycled`.
    pub fn new() -> Self {
        Self::from_recycled(Vec::new())
    }

    /// Fresh raw segment writing into `out`, whose contents are discarded
    /// but whose capacity is kept (see [`crate::MqEncoder::from_recycled`]).
    pub fn from_recycled(mut out: Vec<u8>) -> Self {
        out.clear();
        Self {
            out,
            acc: 0,
            filled: 0,
            nbits: 8,
            decisions: 0,
        }
    }

    /// Bits written into this segment so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Append one raw bit.
    // AUDIT(fn): encoder side — emits bits this process generated.
    #[allow(clippy::arithmetic_side_effects)]
    pub fn put(&mut self, bit: u8) {
        debug_assert!(bit <= 1);
        self.decisions += 1;
        self.acc = (self.acc << 1) | (bit & 1);
        self.filled += 1;
        if self.filled == self.nbits {
            // A 7-bit byte after 0xFF keeps its MSB stuffed to zero.
            let byte = self.acc;
            self.out.push(byte); // AUDIT(hot): amortized — recycled segment buffer.
            self.nbits = if byte == 0xFF { 7 } else { 8 };
            self.acc = 0;
            self.filled = 0;
        }
    }

    /// Append the low `n` bits of `bits`, most-significant first.
    /// Bit-identical to `n` [`RawEncoder::put`] calls; when the bits fit in
    /// the current partial byte they land with one shift/or instead of a
    /// per-bit loop. Tier-1's bypass passes use this to emit a stripe
    /// column's significance or refinement bits in one call.
    // AUDIT(fn): encoder side — emits bits this process generated; `n <= 8`
    // is asserted and `filled + n <= nbits <= 8` guards the fast path.
    #[allow(clippy::arithmetic_side_effects)]
    pub fn put_bits(&mut self, bits: u8, n: u8) {
        debug_assert!(n <= 8);
        if n == 0 {
            return;
        }
        if self.filled + n < self.nbits {
            // Fast path: no byte completes, so no stuffing decision is due.
            self.decisions += u64::from(n);
            self.acc = (self.acc << n) | (bits & ((1 << n) - 1));
            self.filled += n;
            return;
        }
        let mut i = n;
        while i > 0 {
            i -= 1;
            self.put((bits >> i) & 1);
        }
    }

    /// Terminate the segment: zero-pad to a byte, append a stuffing byte if
    /// the segment would otherwise end in `0xFF`.
    // AUDIT(fn): encoder side; `filled < nbits` whenever it is non-zero.
    #[allow(clippy::arithmetic_side_effects)]
    pub fn flush(mut self) -> Vec<u8> {
        if self.filled > 0 {
            let pad = self.nbits - self.filled;
            // A 7-bit follower byte keeps its MSB stuffed to zero.
            let mask = if self.nbits == 7 { 0x7F } else { 0xFF };
            self.out.push((self.acc << pad) & mask); // AUDIT(hot): amortized — flush tail, recycled buffer.
        }
        if self.out.last() == Some(&0xFF) {
            self.out.push(0); // AUDIT(hot): amortized — at most one terminator byte per pass.
        }
        self.out
    }

    /// Bytes the segment would occupy if flushed now (upper bound).
    // AUDIT(fn): encoder side; small in-memory byte count.
    #[allow(clippy::arithmetic_side_effects)]
    pub fn bytes_upper_bound(&self) -> usize {
        self.out.len() + 2
    }
}

/// Raw bit reader matching [`RawEncoder`].
#[derive(Debug)]
pub struct RawDecoder<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u8,
    left: u8,
    prev_ff: bool,
}

impl<'a> RawDecoder<'a> {
    /// Read raw bits from `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            acc: 0,
            left: 0,
            prev_ff: false,
        }
    }

    /// Next raw bit (0 past the end — the decoder never reads more symbols
    /// than the encoder wrote).
    // AUDIT(fn): decoder-reachable. Reads go through the bounds-checked
    // `get`/`unwrap_or` (zero bits past the end); `left -= 1` runs right
    // after the refill set it to 7 or 8; untrusted bytes only become bit
    // *values*.
    #[allow(clippy::arithmetic_side_effects)]
    pub fn get(&mut self) -> u8 {
        if self.left == 0 {
            let byte = self.data.get(self.pos).copied().unwrap_or(0);
            self.pos = self.pos.saturating_add(1);
            if self.prev_ff {
                self.left = 7;
                self.acc = byte << 1;
            } else {
                self.left = 8;
                self.acc = byte;
            }
            self.prev_ff = byte == 0xFF;
        }
        let bit = (self.acc >> 7) & 1;
        self.acc <<= 1;
        self.left -= 1;
        bit
    }
}

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_patterns() {
        for seed in [1u64, 7, 42, 0xFFFF_FFFF] {
            let mut state = seed;
            let bits: Vec<u8> = (0..500)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    ((state >> 40) & 1) as u8
                })
                .collect();
            let mut w = RawEncoder::new();
            for &b in &bits {
                w.put(b);
            }
            let bytes = w.flush();
            let mut r = RawDecoder::new(&bytes);
            for (i, &b) in bits.iter().enumerate() {
                assert_eq!(r.get(), b, "seed {seed} bit {i}");
            }
        }
    }

    #[test]
    fn all_ones_never_forms_marker() {
        let mut w = RawEncoder::new();
        for _ in 0..100 {
            w.put(1);
        }
        let bytes = w.flush();
        for pair in bytes.windows(2) {
            if pair[0] == 0xFF {
                assert!(pair[1] < 0x80, "{pair:?}");
            }
        }
        assert_ne!(bytes.last(), Some(&0xFF));
        // and it still round-trips
        let mut r = RawDecoder::new(&bytes);
        for _ in 0..100 {
            assert_eq!(r.get(), 1);
        }
    }

    #[test]
    fn empty_segment() {
        assert!(RawEncoder::new().flush().is_empty());
    }

    #[test]
    fn put_bits_matches_per_bit_puts() {
        // Drive both writers with the same stream chopped into random-width
        // groups; byte output must match exactly, including across stuffing
        // boundaries (long 1-runs force plenty of 0xFF bytes).
        for seed in [3u64, 19, 0xDEAD_BEEF, u64::MAX] {
            let mut state = seed;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 33
            };
            let mut a = RawEncoder::new();
            let mut b = RawEncoder::new();
            for _ in 0..400 {
                let n = (next() % 9) as u8; // 0..=8
                let bits = if next() % 3 == 0 {
                    0xFF // bias toward 1-runs to exercise stuffing
                } else {
                    (next() & 0xFF) as u8
                };
                b.put_bits(bits, n);
                let mut i = n;
                while i > 0 {
                    i -= 1;
                    a.put((bits >> i) & 1);
                }
            }
            assert_eq!(a.flush(), b.flush(), "seed {seed}");
        }
    }

    #[test]
    fn stuffed_byte_boundary() {
        // Write exactly 8 ones (0xFF), then 7 more bits: the follower byte
        // carries only 7 payload bits.
        let mut w = RawEncoder::new();
        for _ in 0..8 {
            w.put(1);
        }
        for b in [1u8, 0, 1, 0, 1, 0, 1] {
            w.put(b);
        }
        let bytes = w.flush();
        assert_eq!(bytes[0], 0xFF);
        assert_eq!(bytes[1] & 0x80, 0);
        let mut r = RawDecoder::new(&bytes);
        for _ in 0..8 {
            assert_eq!(r.get(), 1);
        }
        for b in [1u8, 0, 1, 0, 1, 0, 1] {
            assert_eq!(r.get(), b);
        }
    }
}
