//! The MQ-coder probability state machine (ISO/IEC 15444-1 Table C.2).

/// One row of the Qe probability table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QeEntry {
    /// LPS probability estimate (16-bit fixed point).
    pub qe: u16,
    /// Next state after an MPS renormalization.
    pub nmps: u8,
    /// Next state after an LPS renormalization.
    pub nlps: u8,
    /// Whether an LPS flips the MPS sense.
    pub switch: bool,
}

const fn e(qe: u16, nmps: u8, nlps: u8, switch: u8) -> QeEntry {
    QeEntry {
        qe,
        nmps,
        nlps,
        switch: switch != 0,
    }
}

/// The 47-state adaptation table.
pub const QE_TABLE: [QeEntry; 47] = [
    e(0x5601, 1, 1, 1),
    e(0x3401, 2, 6, 0),
    e(0x1801, 3, 9, 0),
    e(0x0AC1, 4, 12, 0),
    e(0x0521, 5, 29, 0),
    e(0x0221, 38, 33, 0),
    e(0x5601, 7, 6, 1),
    e(0x5401, 8, 14, 0),
    e(0x4801, 9, 14, 0),
    e(0x3801, 10, 14, 0),
    e(0x3001, 11, 17, 0),
    e(0x2401, 12, 18, 0),
    e(0x1C01, 13, 20, 0),
    e(0x1601, 29, 21, 0),
    e(0x5601, 15, 14, 1),
    e(0x5401, 16, 14, 0),
    e(0x5101, 17, 15, 0),
    e(0x4801, 18, 16, 0),
    e(0x3801, 19, 17, 0),
    e(0x3401, 20, 18, 0),
    e(0x3001, 21, 19, 0),
    e(0x2801, 22, 19, 0),
    e(0x2401, 23, 20, 0),
    e(0x2201, 24, 21, 0),
    e(0x1C01, 25, 22, 0),
    e(0x1801, 26, 23, 0),
    e(0x1601, 27, 24, 0),
    e(0x1401, 28, 25, 0),
    e(0x1201, 29, 26, 0),
    e(0x1101, 30, 27, 0),
    e(0x0AC1, 31, 28, 0),
    e(0x09C1, 32, 29, 0),
    e(0x08A1, 33, 30, 0),
    e(0x0521, 34, 31, 0),
    e(0x0441, 35, 32, 0),
    e(0x02A1, 36, 33, 0),
    e(0x0221, 37, 34, 0),
    e(0x0141, 38, 35, 0),
    e(0x0111, 39, 36, 0),
    e(0x0085, 40, 37, 0),
    e(0x0049, 41, 38, 0),
    e(0x0025, 42, 39, 0),
    e(0x0015, 43, 40, 0),
    e(0x0009, 44, 41, 0),
    e(0x0005, 45, 42, 0),
    e(0x0001, 45, 43, 0),
    e(0x5601, 46, 46, 0),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_stay_in_table() {
        for (i, row) in QE_TABLE.iter().enumerate() {
            assert!((row.nmps as usize) < QE_TABLE.len(), "row {i}");
            assert!((row.nlps as usize) < QE_TABLE.len(), "row {i}");
        }
    }

    #[test]
    fn probabilities_are_valid() {
        for (i, row) in QE_TABLE.iter().enumerate() {
            assert!(row.qe >= 1, "row {i} qe must be positive");
            assert!(row.qe <= 0x5601, "row {i} LPS estimate above half");
        }
    }

    #[test]
    fn switch_rows_match_standard() {
        let switch_rows: Vec<usize> = QE_TABLE
            .iter()
            .enumerate()
            .filter(|(_, r)| r.switch)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(switch_rows, [0, 6, 14]);
    }

    #[test]
    fn terminal_fast_state_self_loops() {
        // Row 46 is the non-adaptive state used by the UNIFORM context.
        assert_eq!(QE_TABLE[46].nmps, 46);
        assert_eq!(QE_TABLE[46].nlps, 46);
        // Row 45 self-loops on MPS at minimal Qe.
        assert_eq!(QE_TABLE[45].nmps, 45);
    }
}
