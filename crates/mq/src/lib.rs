//! MQ arithmetic coder (ISO/IEC 15444-1 Annex C).
//!
//! The MQ coder is the binary adaptive arithmetic coder at the bottom of
//! JPEG2000's Tier-1 entropy coding stage. Decisions are coded against one
//! of a set of adaptive contexts; each context tracks an index into the
//! 47-row probability state machine ([`QE_TABLE`]) and the current
//! most-probable-symbol (MPS) sense.
//!
//! The implementation follows the Annex C software conventions (also used
//! by the reference implementations the paper parallelizes): 16-bit `A`
//! interval register, 28-bit `C` code register, byte stuffing after `0xFF`,
//! and the optional-trailing-`0xFF` discarding flush.

#![deny(unsafe_op_in_unsafe_fn)]
#![deny(unused_must_use)]
#![deny(clippy::arithmetic_side_effects, clippy::indexing_slicing)]

mod raw;
mod table;

pub use raw::{RawDecoder, RawEncoder};
pub use table::{QeEntry, QE_TABLE};

/// Adaptive state of one coding context: probability-table index plus the
/// current most-probable-symbol sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtxState {
    index: u8,
    mps: u8,
}

impl CtxState {
    /// Context starting at table row `index` with MPS = 0.
    ///
    /// # Panics
    /// Panics if `index >= 47`.
    pub fn new(index: u8) -> Self {
        // AUDIT: `index` is a compile-time context-initialization constant
        // chosen by the Tier-1 coder (rows 0, 3 and 46 in practice), never
        // a value read from the codestream.
        assert!(
            (index as usize) < QE_TABLE.len(),
            "invalid Qe index {index}"
        );
        Self { index, mps: 0 }
    }

    /// Current table row.
    pub fn index(&self) -> u8 {
        self.index
    }

    /// Current most probable symbol (0 or 1).
    pub fn mps(&self) -> u8 {
        self.mps
    }
}

impl Default for CtxState {
    /// Fresh context: row 0, MPS 0 (the standard's default initialization
    /// for most Tier-1 contexts).
    fn default() -> Self {
        Self { index: 0, mps: 0 }
    }
}

/// MQ encoder producing one terminated codeword segment.
///
/// Typical use: [`MqEncoder::encode`] decisions, then [`MqEncoder::flush`]
/// to obtain the segment bytes. `pj2k` Tier-1 terminates the coder at every
/// coding pass, so pass boundaries are exact truncation points (see
/// DESIGN.md §5).
#[derive(Debug, Clone)]
pub struct MqEncoder {
    c: u32,
    a: u32,
    ct: i32,
    /// `buf[0]` is a sentinel standing for the byte "before" the stream;
    /// `bp` indexes the current byte `B`.
    buf: Vec<u8>,
    bp: usize,
    /// Decisions coded into this segment (profiling; see
    /// [`MqEncoder::decisions`]).
    decisions: u64,
}

impl Default for MqEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl MqEncoder {
    /// Fresh encoder (INITENC).
    // AUDIT(hot): setup-time — one tiny buffer per fresh coder; hot
    // loops use `from_recycled` and never hit this.
    pub fn new() -> Self {
        Self::from_recycled(Vec::with_capacity(1))
    }

    /// Fresh encoder (INITENC) writing into `buf`, whose contents are
    /// discarded but whose capacity is kept. Coding loops that terminate
    /// the coder once per pass (Tier-1 codes thousands of passes per image)
    /// hand the [`MqEncoder::flush`]ed segment back here instead of paying
    /// a heap allocation per pass.
    // AUDIT(hot): amortized — the sentinel push reuses the recycled
    // buffer's capacity (cleared, never shrunk).
    pub fn from_recycled(mut buf: Vec<u8>) -> Self {
        buf.clear();
        buf.push(0);
        Self {
            c: 0,
            a: 0x8000,
            ct: 12, // sentinel byte is 0x00, not 0xFF
            buf,
            bp: 0,
            decisions: 0,
        }
    }

    /// Encode binary `decision` (0 or 1) in context `ctx`.
    ///
    /// The branch structure puts the overwhelmingly common case — an MPS
    /// coding whose interval stays normalized, a two-register update with
    /// no table transition — first, with a unified select-friendly
    /// conditional-exchange tail covering both the MPS-renormalize and LPS
    /// cases.
    // AUDIT(fn): encoder side — consumes decisions this process generated,
    // never untrusted bytes; `ctx.index` is always a valid table row
    // (CtxState::new asserts it, and every transition assigns an
    // nmps/nlps value from the table, all < 47).
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    #[inline]
    pub fn encode(&mut self, ctx: &mut CtxState, decision: u8) {
        debug_assert!(decision <= 1);
        self.decisions += 1;
        let row = QE_TABLE[ctx.index as usize];
        let qe = u32::from(row.qe);
        let a = self.a - qe;
        if decision == ctx.mps && a & 0x8000 != 0 {
            // Fast path: MPS, interval stays normalized.
            self.a = a;
            self.c += qe;
            return;
        }
        // Unified conditional-exchange tail, written select-friendly so the
        // compiler can avoid a data-dependent branch (near-random decision
        // streams — refinement bits — mispredict a branchy tail half the
        // time): an MPS keeps the subtracted interval unless it became the
        // smaller one, an LPS takes exactly the opposite choice, so one
        // flag flip covers both Annex C exchange cases.
        let is_lps = decision != ctx.mps;
        let ex = (a < qe) != is_lps;
        self.a = if ex { qe } else { a };
        self.c += if ex { 0 } else { qe };
        ctx.index = if is_lps { row.nlps } else { row.nmps };
        ctx.mps ^= u8::from(is_lps && row.switch);
        self.renorm();
    }

    /// Encode `n` identical `decision`s in context `ctx`. Bit-identical to
    /// `n` [`MqEncoder::encode`] calls, but every renormalization-free MPS
    /// span is applied as one pair of register updates: `k` consecutive
    /// MPS codings that do not renormalize are exactly
    /// `a -= k*qe; c += k*qe` with no table transition, so a run costs
    /// O(renormalizations) instead of O(n). Tier-1's cleanup pass uses
    /// this for the run-length context over stretches of all-quiet stripe
    /// columns.
    // AUDIT(fn): encoder side; table-row invariant as in `encode`. The
    // batched subtraction keeps `a >= 0x8000` by construction of `k`, and
    // `k * qe <= a - 0x8000 < 0x8000` cannot overflow.
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    pub fn encode_run(&mut self, ctx: &mut CtxState, decision: u8, mut n: usize) {
        debug_assert!(decision <= 1);
        while n > 0 {
            if decision == ctx.mps {
                let qe = u32::from(QE_TABLE[ctx.index as usize].qe);
                // Largest k with a - k*qe still normalized (bit 15 set).
                let k = (((self.a - 0x8000) / qe) as usize).min(n);
                if k > 0 {
                    let kqe = (k as u32) * qe;
                    self.a -= kqe;
                    self.c += kqe;
                    self.decisions += k as u64;
                    n -= k;
                    continue;
                }
            }
            // LPS, or an MPS that renormalizes: one slow decision.
            self.encode(ctx, decision);
            n -= 1;
        }
    }

    /// Number of decisions coded into this segment so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    // AUDIT(fn): encoder side; Annex C register discipline (A < 0x8000 on
    // entry, CT in 1..=12) bounds every shift and decrement.
    #[allow(clippy::arithmetic_side_effects)]
    #[inline]
    fn renorm(&mut self) {
        // Common case: the whole shortfall fits before the next byte
        // boundary — one batched shift, no byte_out, no loop-carried
        // branch. Falls back to the bit-at-a-time Annex C loop exactly
        // when a byte_out would fire mid-shift, so output timing (and the
        // bytes) are unchanged.
        let n = (self.a.leading_zeros() as i32) - 16;
        if n < self.ct {
            self.a <<= n;
            self.c <<= n;
            self.ct -= n;
            return;
        }
        loop {
            self.a <<= 1;
            self.c <<= 1;
            self.ct -= 1;
            if self.ct == 0 {
                self.byte_out();
            }
            if self.a & 0x8000 != 0 {
                break;
            }
        }
    }

    // AUDIT(fn): encoder side; `bp` always indexes a pushed byte (the
    // sentinel guarantees `buf` is never empty).
    // AUDIT(hot): amortized — all pushes append to the recycled segment
    // buffer; steady state reuses capacity (oracle: 0 allocs/block).
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    fn byte_out(&mut self) {
        if self.buf[self.bp] == 0xFF {
            // Stuffing: only 7 bits follow a 0xFF byte.
            self.push((self.c >> 20) as u8);
            self.c &= 0xF_FFFF;
            self.ct = 7;
        } else if self.c < 0x800_0000 {
            self.push((self.c >> 19) as u8);
            self.c &= 0x7_FFFF;
            self.ct = 8;
        } else {
            // Carry into the previous byte.
            self.buf[self.bp] += 1;
            if self.buf[self.bp] == 0xFF {
                self.c &= 0x7FF_FFFF;
                self.push((self.c >> 20) as u8);
                self.c &= 0xF_FFFF;
                self.ct = 7;
            } else {
                self.push((self.c >> 19) as u8);
                self.c &= 0x7_FFFF;
                self.ct = 8;
            }
        }
    }

    // AUDIT(fn): encoder side; `bp` tracks `buf.len() - 1`.
    // AUDIT(hot): amortized — append into recycled segment buffer.
    #[allow(clippy::arithmetic_side_effects)]
    #[inline]
    fn push(&mut self, b: u8) {
        self.buf.push(b);
        self.bp += 1;
    }

    /// Number of bytes the segment would occupy if flushed now (an upper
    /// bound used for conservative rate estimates before termination).
    // AUDIT(fn): encoder side; `bp` is a small in-memory byte count.
    #[allow(clippy::arithmetic_side_effects)]
    pub fn bytes_upper_bound(&self) -> usize {
        // bp bytes committed (minus sentinel) + flush emits at most 2 more.
        self.bp + 2
    }

    /// Terminate the codeword (FLUSH) and return the segment bytes.
    // AUDIT(fn): encoder side; register discipline as in `renorm`, and the
    // sentinel keeps `buf[bp]` in bounds.
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    pub fn flush(mut self) -> Vec<u8> {
        // SETBITS: maximize C within the final interval.
        let temp = self.c + self.a;
        self.c |= 0xFFFF;
        if self.c >= temp {
            self.c -= 0x8000;
        }
        self.c <<= self.ct;
        self.byte_out();
        self.c <<= self.ct;
        self.byte_out();
        if self.buf[self.bp] != 0xFF {
            self.bp += 1;
        }
        // Bytes 1..bp (exclusive of sentinel; a trailing 0xFF is dropped).
        let end = self.bp.min(self.buf.len());
        self.buf.truncate(end);
        self.buf.remove(0);
        self.buf
    }
}

/// MQ decoder over one terminated codeword segment.
///
/// Reading past the end of the segment feeds `1` bits, per the standard, so
/// truncated-but-terminated segments decode cleanly.
#[derive(Debug, Clone)]
pub struct MqDecoder<'a> {
    data: &'a [u8],
    bp: usize,
    c: u32,
    a: u32,
    ct: i32,
}

impl<'a> MqDecoder<'a> {
    /// Initialize over `data` (INITDEC).
    // AUDIT(fn): decoder-reachable. Register fills are shifts of freshly
    // read bytes into an empty 28-bit C; `ct -= 7` runs right after
    // `byte_in` set `ct` to 7 or 8. Untrusted bytes land in register
    // *values* only — `bp` advances by 1 per read and every access goes
    // through the bounds-checked `byte_at`.
    #[allow(clippy::arithmetic_side_effects)]
    pub fn new(data: &'a [u8]) -> Self {
        let mut d = Self {
            data,
            bp: 0,
            c: 0,
            a: 0,
            ct: 0,
        };
        let b0 = d.byte_at(0);
        d.c = u32::from(b0) << 16;
        d.byte_in();
        d.c <<= 7;
        d.ct -= 7;
        d.a = 0x8000;
        d
    }

    #[inline]
    fn byte_at(&self, i: usize) -> u8 {
        self.data.get(i).copied().unwrap_or(0xFF)
    }

    // AUDIT(fn): decoder-reachable. Every data access is either guarded by
    // `bp < data.len()` on the same branch or goes through the
    // bounds-checked `byte_at` (which feeds 0xFF past the end, per the
    // standard); `bp + 1` cannot overflow because `bp <= data.len()`.
    // C-register additions stay within 28 bits by the Annex C invariants.
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    fn byte_in(&mut self) {
        if self.bp < self.data.len() && self.data[self.bp] == 0xFF {
            if self.byte_at(self.bp + 1) > 0x8F {
                // Marker (or end of data): feed 1-bits from now on.
                self.c += 0xFF00;
                self.ct = 8;
            } else {
                self.bp += 1;
                self.c += u32::from(self.byte_at(self.bp)) << 9;
                self.ct = 7;
            }
        } else if self.bp < self.data.len() {
            self.bp += 1;
            self.c += u32::from(self.byte_at(self.bp)) << 8;
            self.ct = 8;
        } else {
            self.c += 0xFF00;
            self.ct = 8;
        }
    }

    /// Decode one binary decision in context `ctx`.
    // AUDIT(fn): decoder-reachable. `ctx.index` is always a valid table
    // row: CtxState construction asserts it and every transition assigns
    // an nmps/nlps entry from the table, all < 47 — untrusted bits select
    // *which* transition fires, never the index value itself. The
    // `a -= qe` / `c -= qe << 16` subtractions are guarded by the Annex C
    // exchange comparisons, and `1 - ctx.mps` has mps ∈ {0, 1}.
    #[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
    #[inline]
    pub fn decode(&mut self, ctx: &mut CtxState) -> u8 {
        let row = &QE_TABLE[ctx.index as usize];
        let qe = u32::from(row.qe);
        self.a -= qe;
        let d;
        if (self.c >> 16) < qe {
            // LPS exchange path.
            if self.a < qe {
                self.a = qe;
                d = ctx.mps;
                ctx.index = row.nmps;
            } else {
                self.a = qe;
                d = 1 - ctx.mps;
                if row.switch {
                    ctx.mps ^= 1;
                }
                ctx.index = row.nlps;
            }
            self.renorm();
        } else {
            self.c -= qe << 16;
            if self.a & 0x8000 == 0 {
                // MPS exchange path.
                if self.a < qe {
                    d = 1 - ctx.mps;
                    if row.switch {
                        ctx.mps ^= 1;
                    }
                    ctx.index = row.nlps;
                } else {
                    d = ctx.mps;
                    ctx.index = row.nmps;
                }
                self.renorm();
            } else {
                d = ctx.mps;
            }
        }
        d
    }

    // AUDIT(fn): decoder-reachable; `byte_in` refills whenever `ct`
    // reaches 0, so the decrement never wraps, and A/C shifts are the
    // standard's 16/28-bit register discipline (overflow of high garbage
    // bits is masked off by the exchange comparisons).
    #[allow(clippy::arithmetic_side_effects)]
    #[inline]
    fn renorm(&mut self) {
        loop {
            if self.ct == 0 {
                self.byte_in();
            }
            self.a <<= 1;
            self.c <<= 1;
            self.ct -= 1;
            if self.a & 0x8000 != 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::arithmetic_side_effects, clippy::indexing_slicing)]
mod tests {
    use super::*;

    fn roundtrip(decisions: &[(usize, u8)], n_ctx: usize) {
        let mut enc_ctx = vec![CtxState::default(); n_ctx];
        let mut enc = MqEncoder::new();
        for &(ctx, d) in decisions {
            enc.encode(&mut enc_ctx[ctx], d);
        }
        let bytes = enc.flush();
        let mut dec_ctx = vec![CtxState::default(); n_ctx];
        let mut dec = MqDecoder::new(&bytes);
        for (i, &(ctx, d)) in decisions.iter().enumerate() {
            let got = dec.decode(&mut dec_ctx[ctx]);
            assert_eq!(got, d, "decision {i} (ctx {ctx}) of {}", decisions.len());
        }
    }

    #[test]
    fn empty_stream_flushes() {
        let enc = MqEncoder::new();
        let bytes = enc.flush();
        // Flushing an empty codeword yields a tiny, valid segment.
        assert!(bytes.len() <= 3, "{bytes:?}");
    }

    #[test]
    fn all_zeros_roundtrip() {
        let decisions: Vec<(usize, u8)> = (0..1000).map(|_| (0, 0)).collect();
        roundtrip(&decisions, 1);
    }

    #[test]
    fn all_ones_roundtrip() {
        let decisions: Vec<(usize, u8)> = (0..1000).map(|_| (0, 1)).collect();
        roundtrip(&decisions, 1);
    }

    #[test]
    fn alternating_roundtrip() {
        let decisions: Vec<(usize, u8)> = (0..2000).map(|i| (0, (i % 2) as u8)).collect();
        roundtrip(&decisions, 1);
    }

    #[test]
    fn multi_context_roundtrip() {
        let decisions: Vec<(usize, u8)> = (0..5000)
            .map(|i| ((i * 7) % 19, ((i * i + i / 3) % 2) as u8))
            .collect();
        roundtrip(&decisions, 19);
    }

    #[test]
    fn pseudorandom_streams_roundtrip() {
        // xorshift-based deterministic pseudo-random decision streams with
        // biased distributions (the adaptive states must track).
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for bias in [1u64, 3, 7, 15, 63] {
            let decisions: Vec<(usize, u8)> = (0..3000)
                .map(|_| {
                    let r = next();
                    ((r % 5) as usize, u8::from(r % (bias + 1) == 0))
                })
                .collect();
            roundtrip(&decisions, 5);
        }
    }

    #[test]
    fn encode_run_is_bit_identical_to_repeated_encode() {
        // encode_run must be a pure speedup: same bytes, same ctx state,
        // same decision count — across run lengths, both polarities, and
        // contexts in every adaptation state a warmup can reach.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..200 {
            // Random warmup, then a run, then a random tail.
            let warmup: Vec<u8> = (0..(next() % 64)).map(|_| (next() % 2) as u8).collect();
            let run_bit = (next() % 2) as u8;
            let run_len = (next() % 300) as usize;
            let tail: Vec<u8> = (0..(next() % 32)).map(|_| (next() % 2) as u8).collect();

            let mut ctx_a = CtxState::default();
            let mut enc_a = MqEncoder::new();
            let mut ctx_b = CtxState::default();
            let mut enc_b = MqEncoder::new();
            for &d in &warmup {
                enc_a.encode(&mut ctx_a, d);
                enc_b.encode(&mut ctx_b, d);
            }
            for _ in 0..run_len {
                enc_a.encode(&mut ctx_a, run_bit);
            }
            enc_b.encode_run(&mut ctx_b, run_bit, run_len);
            for &d in &tail {
                enc_a.encode(&mut ctx_a, d);
                enc_b.encode(&mut ctx_b, d);
            }
            assert_eq!(ctx_a, ctx_b, "trial {trial}: ctx state diverged");
            assert_eq!(
                enc_a.decisions(),
                enc_b.decisions(),
                "trial {trial}: decision count diverged"
            );
            assert_eq!(
                enc_a.flush(),
                enc_b.flush(),
                "trial {trial}: bytes diverged (run_bit={run_bit} run_len={run_len})"
            );
        }
    }

    #[test]
    fn encode_run_zero_length_is_noop() {
        let mut ctx = CtxState::default();
        let mut enc = MqEncoder::new();
        enc.encode_run(&mut ctx, 0, 0);
        enc.encode_run(&mut ctx, 1, 0);
        assert_eq!(enc.decisions(), 0);
        let baseline = MqEncoder::new().flush();
        assert_eq!(enc.flush(), baseline);
    }

    #[test]
    fn compresses_biased_stream() {
        // 10k heavily biased decisions should code far below 10k bits.
        let mut enc = MqEncoder::new();
        let mut ctx = CtxState::default();
        for i in 0..10_000 {
            enc.encode(&mut ctx, u8::from(i % 100 == 0));
        }
        let bytes = enc.flush();
        assert!(
            bytes.len() < 300,
            "biased stream should compress, got {}",
            bytes.len()
        );
    }

    #[test]
    fn random_stream_does_not_compress_much() {
        let mut state = 0x9E37_79B9_u64;
        let mut enc = MqEncoder::new();
        let mut ctx = CtxState::default();
        let n = 8000;
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            enc.encode(&mut ctx, ((state >> 33) & 1) as u8);
        }
        let bytes = enc.flush();
        assert!(
            bytes.len() * 8 > n * 9 / 10,
            "random stream: {} bytes for {n} bits",
            bytes.len()
        );
    }

    #[test]
    fn bytes_upper_bound_is_an_upper_bound() {
        let mut enc = MqEncoder::new();
        let mut ctx = CtxState::default();
        for i in 0..777 {
            enc.encode(&mut ctx, (i % 3 == 0) as u8);
        }
        let bound = enc.bytes_upper_bound();
        let actual = enc.flush().len();
        assert!(actual <= bound, "{actual} > {bound}");
    }

    #[test]
    fn stuffing_never_produces_ff_above_8f() {
        // After any 0xFF, the next byte must be <= 0x8F inside a segment
        // (marker range is reserved).
        let mut state = 7u64;
        let mut enc = MqEncoder::new();
        let mut ctxs = [CtxState::default(); 3];
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            let c = (state >> 60) as usize % 3;
            enc.encode(&mut ctxs[c], ((state >> 31) & 1) as u8);
        }
        let bytes = enc.flush();
        for pair in bytes.windows(2) {
            if pair[0] == 0xFF {
                assert!(pair[1] <= 0x8F, "marker emitted inside segment: {pair:?}");
            }
        }
    }

    #[test]
    fn segment_decoding_is_independent_of_trailing_garbage() {
        // Termination must protect the decoded prefix even if extra bytes
        // follow (packets concatenate segments).
        let decisions: Vec<(usize, u8)> = (0..500).map(|i| (0, (i % 5 == 0) as u8)).collect();
        let mut ctx = [CtxState::default()];
        let mut enc = MqEncoder::new();
        for &(c, d) in &decisions {
            enc.encode(&mut ctx[c], d);
        }
        let bytes = enc.flush();
        let mut extended = bytes.clone();
        extended.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
        let mut d1 = MqDecoder::new(&bytes);
        let mut d2 = MqDecoder::new(&extended[..bytes.len()]);
        let mut c1 = [CtxState::default()];
        let mut c2 = [CtxState::default()];
        for &(c, d) in &decisions {
            assert_eq!(d1.decode(&mut c1[c]), d);
            assert_eq!(d2.decode(&mut c2[c]), d);
        }
    }

    #[test]
    fn context_state_accessors() {
        let ctx = CtxState::new(46);
        assert_eq!(ctx.index(), 46);
        assert_eq!(ctx.mps(), 0);
    }

    #[test]
    #[should_panic(expected = "invalid Qe index")]
    fn invalid_index_panics() {
        let _ = CtxState::new(47);
    }
}
