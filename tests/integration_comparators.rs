//! Cross-codec comparisons: the relationships the paper's evaluation relies
//! on must hold between our three codecs (JPEG, SPIHT, JPEG2000).

use pj2k_suite::prelude::*;
use std::time::Instant;

/// Encode with baseline JPEG at (approximately) `bpp`, by searching the
/// quality knob.
fn jpeg_at_rate(img: &Image, bpp: f64) -> (Vec<u8>, Image) {
    let target = (bpp * img.pixels() as f64 / 8.0) as usize;
    let mut best = pj2k_suite::jpegbase::encode(img, 1).unwrap();
    for q in 2..=95 {
        let bytes = pj2k_suite::jpegbase::encode(img, q).unwrap();
        if bytes.len() > target {
            break;
        }
        best = bytes;
    }
    let out = pj2k_suite::jpegbase::decode(&best).unwrap();
    (best, out)
}

fn j2k_at_rate(img: &Image, bpp: f64) -> (Vec<u8>, Image) {
    let cfg = EncoderConfig {
        rate: RateControl::TargetBpp(vec![bpp]),
        ..EncoderConfig::default()
    };
    let (bytes, _) = Encoder::new(cfg).unwrap().encode(img);
    let (out, _) = Decoder::default().decode(&bytes).unwrap();
    (bytes, out)
}

#[test]
fn jpeg2000_beats_jpeg_at_low_rates() {
    // The paper (§2): JPEG2000 targets "better rate-distortion performance
    // than the widely used JPEG, especially at lower bitrates".
    let img = synth::natural_gray(256, 256, 404);
    let bpp = 0.125;
    let (_, jpeg_out) = jpeg_at_rate(&img, bpp);
    let (_, j2k_out) = j2k_at_rate(&img, bpp);
    let q_jpeg = psnr(&img, &jpeg_out);
    let q_j2k = psnr(&img, &j2k_out);
    assert!(
        q_j2k > q_jpeg,
        "at {bpp} bpp: JPEG2000 {q_j2k:.2} dB vs JPEG {q_jpeg:.2} dB"
    );
}

#[test]
fn spiht_is_competitive_at_low_rates() {
    let img = synth::natural_gray(256, 256, 505);
    let bpp = 0.25;
    let sp = pj2k_suite::spiht::encode(&img, 5, bpp).unwrap();
    let sp_out = pj2k_suite::spiht::decode(&sp).unwrap();
    let (_, jpeg_out) = jpeg_at_rate(&img, bpp);
    let q_spiht = psnr(&img, &sp_out);
    let q_jpeg = psnr(&img, &jpeg_out);
    // SPIHT (wavelet, embedded) should at least approach JPEG at 0.25 bpp.
    assert!(
        q_spiht > q_jpeg - 1.0,
        "SPIHT {q_spiht:.2} dB vs JPEG {q_jpeg:.2} dB at {bpp} bpp"
    );
}

#[test]
fn encode_time_ordering_matches_figure_2() {
    // Fig. 2: JPEG is by far the fastest; the JPEG2000 implementations are
    // the slowest; SPIHT sits in between. Use a size large enough for the
    // ordering to be stable.
    let img = synth::natural_gray(512, 512, 606);
    let t0 = Instant::now();
    let _ = pj2k_suite::jpegbase::encode(&img, 75).unwrap();
    let t_jpeg = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let _ = pj2k_suite::spiht::encode(&img, 5, 1.0).unwrap();
    let t_spiht = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    let cfg = EncoderConfig {
        rate: RateControl::TargetBpp(vec![1.0]),
        ..EncoderConfig::default()
    };
    let _ = Encoder::new(cfg).unwrap().encode(&img);
    let t_j2k = t0.elapsed().as_secs_f64();

    assert!(
        t_jpeg < t_j2k,
        "JPEG ({t_jpeg:.3}s) should be faster than JPEG2000 ({t_j2k:.3}s)"
    );
    assert!(
        t_spiht < t_j2k * 1.2,
        "SPIHT ({t_spiht:.3}s) should not exceed JPEG2000 ({t_j2k:.3}s)"
    );
}

#[test]
fn all_codecs_rate_scale_on_the_same_image() {
    let img = synth::natural_gray(128, 128, 707);
    // JPEG: size grows with quality.
    let j1 = pj2k_suite::jpegbase::encode(&img, 10).unwrap().len();
    let j2 = pj2k_suite::jpegbase::encode(&img, 90).unwrap().len();
    assert!(j1 < j2);
    // SPIHT: size tracks the bpp knob.
    let s1 = pj2k_suite::spiht::encode(&img, 4, 0.25).unwrap().len();
    let s2 = pj2k_suite::spiht::encode(&img, 4, 2.0).unwrap().len();
    assert!(s1 < s2);
    // JPEG2000: size tracks the bpp target.
    let (k1, _) = j2k_at_rate(&img, 0.25);
    let (k2, _) = j2k_at_rate(&img, 2.0);
    assert!(k1.len() < k2.len());
}

#[test]
fn blocking_artifacts_are_a_tiling_phenomenon() {
    // Fig. 5's mechanism: smaller independent-transform regions lose PSNR
    // at a fixed rate. Verify the monotone trend with our codec.
    let img = synth::natural_gray(256, 256, 808);
    let bpp = 0.25;
    let mut prev = f64::INFINITY;
    for tile in [256usize, 128, 64, 32] {
        let cfg = EncoderConfig {
            rate: RateControl::TargetBpp(vec![bpp]),
            tiles: Some((tile, tile)),
            ..EncoderConfig::default()
        };
        let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        let q = psnr(&img, &out);
        assert!(
            q <= prev + 0.75,
            "tile {tile}: PSNR {q:.2} should not beat larger tiles ({prev:.2}) materially"
        );
        prev = prev.min(q);
    }
}
