//! The correctness claim at the heart of a parallelization paper: every
//! parallel configuration must produce the *same* result as sequential
//! execution. For the encoder this is bit-identical codestreams (the DWT
//! splits, quantization splits, and code-block schedules may not change a
//! single bit); for the decoder, bit-identical images.

use pj2k_suite::prelude::*;

fn all_modes(workers: usize) -> Vec<ParallelMode> {
    vec![
        ParallelMode::Sequential,
        ParallelMode::WorkerPool { workers },
        ParallelMode::Rayon { workers },
    ]
}

const FILTERS: [FilterStrategy; 3] = [
    FilterStrategy::Naive,
    FilterStrategy::PaddedWidth,
    FilterStrategy::Strip,
];

#[test]
fn encoder_is_bit_identical_across_all_configurations_97() {
    let img = synth::natural_gray(160, 128, 99);
    let mut reference: Option<Vec<u8>> = None;
    for mode in all_modes(3) {
        for filter in FILTERS {
            let cfg = EncoderConfig {
                rate: RateControl::TargetBpp(vec![0.5, 2.0]),
                parallel: mode,
                filter,
                ..EncoderConfig::default()
            };
            let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
            match &reference {
                None => reference = Some(bytes),
                Some(r) => assert_eq!(&bytes, r, "{mode:?} {filter:?} diverged"),
            }
        }
    }
}

#[test]
fn encoder_is_bit_identical_across_all_configurations_53() {
    let img = synth::natural_rgb(96, 96, 123);
    let mut reference: Option<Vec<u8>> = None;
    for mode in all_modes(4) {
        for filter in FILTERS {
            let cfg = EncoderConfig {
                wavelet: Wavelet::Reversible53,
                rate: RateControl::Lossless,
                parallel: mode,
                filter,
                ..EncoderConfig::default()
            };
            let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
            match &reference {
                None => reference = Some(bytes),
                Some(r) => assert_eq!(&bytes, r, "{mode:?} {filter:?} diverged"),
            }
        }
    }
}

#[test]
fn worker_counts_do_not_change_the_stream() {
    let img = synth::natural_gray(128, 96, 55);
    let mk = |workers| {
        let cfg = EncoderConfig {
            parallel: ParallelMode::WorkerPool { workers },
            ..EncoderConfig::default()
        };
        Encoder::new(cfg).unwrap().encode(&img).0
    };
    let one = mk(1);
    for workers in [2, 3, 5, 8, 16] {
        assert_eq!(mk(workers), one, "workers={workers}");
    }
}

#[test]
fn decoder_parallelism_is_transparent() {
    let img = synth::natural_gray(144, 144, 31);
    let cfg = EncoderConfig {
        rate: RateControl::TargetBpp(vec![1.5]),
        ..EncoderConfig::default()
    };
    let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
    let (reference, _) = Decoder::default().decode(&bytes).unwrap();
    for mode in all_modes(4).into_iter().skip(1) {
        let dec = Decoder {
            parallel: mode,
            ..Decoder::default()
        };
        let (out, _) = dec.decode(&bytes).unwrap();
        assert_eq!(out, reference, "{mode:?}");
    }
}

#[test]
fn tiled_parallel_equivalence() {
    let img = synth::natural_gray(200, 150, 66);
    let mk = |mode| {
        let cfg = EncoderConfig {
            tiles: Some((64, 64)),
            parallel: mode,
            rate: RateControl::TargetBpp(vec![1.0]),
            ..EncoderConfig::default()
        };
        Encoder::new(cfg).unwrap().encode(&img).0
    };
    let seq = mk(ParallelMode::Sequential);
    assert_eq!(seq, mk(ParallelMode::Rayon { workers: 3 }));
    assert_eq!(seq, mk(ParallelMode::WorkerPool { workers: 2 }));
}

#[test]
fn report_block_times_are_complete_in_every_mode() {
    // The SMP projection model depends on per-block timings being recorded
    // regardless of the execution mode.
    let img = synth::natural_gray(128, 128, 47);
    for mode in all_modes(3) {
        let cfg = EncoderConfig {
            parallel: mode,
            ..EncoderConfig::default()
        };
        let (_, report) = Encoder::new(cfg).unwrap().encode(&img);
        assert_eq!(report.block_times.len(), report.num_blocks, "{mode:?}");
        assert!(report.block_times.iter().all(|&t| t >= 0.0));
        assert!(report.num_blocks > 0);
    }
}
