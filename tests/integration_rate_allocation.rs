//! Rate-control behaviour of the PCRD allocator through the public API:
//! budgets respected, quality monotone in rate, layering consistent.

use pj2k_suite::prelude::*;

fn encode_at(img: &Image, bpp: f64) -> Vec<u8> {
    let cfg = EncoderConfig {
        rate: RateControl::TargetBpp(vec![bpp]),
        ..EncoderConfig::default()
    };
    Encoder::new(cfg).unwrap().encode(img).0
}

#[test]
fn body_budget_is_respected_with_bounded_overhead() {
    let img = synth::natural_gray(256, 256, 10);
    for bpp in [0.0625, 0.125, 0.25, 0.5, 1.0, 2.0] {
        let bytes = encode_at(&img, bpp);
        let budget = (bpp * img.pixels() as f64 / 8.0) as usize;
        // Headers (markers, packet headers, Kmax) add overhead on top of
        // the PCRD body budget; it must stay modest.
        assert!(
            bytes.len() <= budget + budget / 4 + 1200,
            "bpp {bpp}: {} bytes for body budget {budget}",
            bytes.len()
        );
    }
}

#[test]
fn psnr_is_monotone_in_rate() {
    let img = synth::natural_gray(256, 256, 20);
    let mut prev = 0.0;
    for bpp in [0.0625, 0.125, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let bytes = encode_at(&img, bpp);
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        let q = psnr(&img, &out);
        assert!(q > prev, "bpp {bpp}: PSNR {q} <= {prev}");
        prev = q;
    }
    assert!(prev > 38.0, "4 bpp PSNR {prev}");
}

#[test]
fn layered_equals_single_layer_at_matching_rate() {
    // Decoding k layers of a multi-layer stream should be close to a
    // single-layer encode at the same rate (PCRD sees the same slopes).
    let img = synth::natural_gray(192, 192, 30);
    let layered_cfg = EncoderConfig {
        rate: RateControl::TargetBpp(vec![0.25, 1.0]),
        ..EncoderConfig::default()
    };
    let (layered, _) = Encoder::new(layered_cfg).unwrap().encode(&img);
    let dec1 = Decoder {
        max_layers: Some(1),
        ..Decoder::default()
    };
    let (out_l1, _) = dec1.decode(&layered).unwrap();
    let q_layered = psnr(&img, &out_l1);

    let single = encode_at(&img, 0.25);
    let (out_s, _) = Decoder::default().decode(&single).unwrap();
    let q_single = psnr(&img, &out_s);
    assert!(
        (q_layered - q_single).abs() < 1.5,
        "layer-1 {q_layered} vs single {q_single}"
    );
}

#[test]
fn ten_layer_staircase_is_monotone() {
    let img = synth::natural_gray(128, 128, 40);
    let rates: Vec<f64> = (1..=10).map(|i| 0.1 * f64::from(i) * 4.0).collect();
    let cfg = EncoderConfig {
        rate: RateControl::TargetBpp(rates),
        ..EncoderConfig::default()
    };
    let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
    let mut prev = 0.0;
    for layers in 1..=10 {
        let dec = Decoder {
            max_layers: Some(layers),
            ..Decoder::default()
        };
        let (out, _) = dec.decode(&bytes).unwrap();
        let q = psnr(&img, &out);
        assert!(q >= prev - 1e-9, "layers={layers}: {q} < {prev}");
        prev = q;
    }
}

#[test]
fn tiny_budget_still_produces_a_valid_stream() {
    let img = synth::natural_gray(128, 128, 50);
    let bytes = encode_at(&img, 0.01); // ~20 bytes of body
    let (out, _) = Decoder::default().decode(&bytes).unwrap();
    assert_eq!(out.width(), 128);
    // Quality will be terrible but the pipeline must not collapse.
    assert!(psnr(&img, &out) > 5.0);
}

#[test]
fn rate_control_interacts_with_tiles() {
    // Budgets are split per tile by pixel share; total must stay bounded.
    let img = synth::natural_gray(256, 128, 60);
    let cfg = EncoderConfig {
        rate: RateControl::TargetBpp(vec![0.5]),
        tiles: Some((128, 128)),
        ..EncoderConfig::default()
    };
    let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
    let budget = (0.5 * img.pixels() as f64 / 8.0) as usize;
    assert!(
        bytes.len() <= budget + budget / 3 + 2400,
        "{} bytes vs budget {budget}",
        bytes.len()
    );
    let (out, _) = Decoder::default().decode(&bytes).unwrap();
    assert!(psnr(&img, &out) > 20.0);
}

#[test]
fn lossless_stream_beats_any_lossy_quality() {
    let img = synth::natural_gray(96, 96, 70);
    let lossless_cfg = EncoderConfig {
        wavelet: Wavelet::Reversible53,
        rate: RateControl::Lossless,
        ..EncoderConfig::default()
    };
    let (ll, _) = Encoder::new(lossless_cfg).unwrap().encode(&img);
    let (out, _) = Decoder::default().decode(&ll).unwrap();
    assert_eq!(psnr(&img, &out), f64::INFINITY);
    let lossy = encode_at(&img, 2.0);
    let (out_lossy, _) = Decoder::default().decode(&lossy).unwrap();
    assert!(psnr(&img, &out_lossy).is_finite());
}
