//! Cross-crate integration: full encode/decode pipelines over realistic
//! inputs, exercising image I/O, transforms, Tier-1/Tier-2 and the
//! codestream container together.

use pj2k_suite::prelude::*;
use std::io::Cursor;

fn lossless_cfg() -> EncoderConfig {
    EncoderConfig {
        wavelet: Wavelet::Reversible53,
        rate: RateControl::Lossless,
        ..EncoderConfig::default()
    }
}

#[test]
fn lossless_gray_all_shapes() {
    // Odd sizes, tiny sizes, non-square, sizes smaller than a code-block.
    for (w, h) in [
        (64, 64),
        (65, 63),
        (33, 97),
        (16, 16),
        (7, 5),
        (257, 128),
        (1, 64),
    ] {
        let img = synth::natural_gray(w, h, (w * 31 + h) as u64);
        let (bytes, _) = Encoder::new(lossless_cfg()).unwrap().encode(&img);
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        assert_eq!(
            pj2k_suite::image::metrics::max_abs_error(&img, &out),
            0,
            "{w}x{h} must be bit exact"
        );
    }
}

#[test]
fn lossless_rgb_with_rct() {
    let img = synth::natural_rgb(96, 72, 5);
    let (bytes, _) = Encoder::new(lossless_cfg()).unwrap().encode(&img);
    let (out, _) = Decoder::default().decode(&bytes).unwrap();
    assert_eq!(pj2k_suite::image::metrics::max_abs_error(&img, &out), 0);
    // And the stream is actually compressed.
    assert!(bytes.len() < img.pixels() * 3, "no compression achieved");
}

#[test]
fn lossless_survives_pnm_round_trip() {
    // PGM write -> read -> encode -> decode -> PGM write: byte-stable.
    let img = synth::natural_gray(80, 60, 9);
    let mut pgm = Vec::new();
    pj2k_suite::image::pnm::write(&mut pgm, &img).unwrap();
    let img2 = pj2k_suite::image::pnm::read(&mut Cursor::new(&pgm)).unwrap();
    assert_eq!(img, img2);
    let (bytes, _) = Encoder::new(lossless_cfg()).unwrap().encode(&img2);
    let (out, _) = Decoder::default().decode(&bytes).unwrap();
    let mut pgm2 = Vec::new();
    pj2k_suite::image::pnm::write(&mut pgm2, &out).unwrap();
    assert_eq!(pgm, pgm2);
}

#[test]
fn lossy_quality_reasonable_across_content() {
    for (name, img) in [
        ("natural", synth::natural_gray(128, 128, 77)),
        ("gradient", synth::gradient(128, 128)),
        ("checker8", synth::checkerboard(128, 128, 8)),
    ] {
        let cfg = EncoderConfig {
            rate: RateControl::TargetBpp(vec![2.0]),
            ..EncoderConfig::default()
        };
        let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        let q = psnr(&img, &out);
        assert!(q > 24.0, "{name}: 2 bpp PSNR {q}");
    }
}

#[test]
fn tiled_lossless_equals_untiled_content() {
    let img = synth::natural_gray(130, 94, 3);
    let cfg = EncoderConfig {
        tiles: Some((64, 64)),
        ..lossless_cfg()
    };
    let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
    let (out, _) = Decoder::default().decode(&bytes).unwrap();
    assert_eq!(pj2k_suite::image::metrics::max_abs_error(&img, &out), 0);
}

#[test]
fn extreme_code_block_sizes() {
    let img = synth::natural_gray(128, 128, 8);
    for cb in [(4, 4), (64, 4), (4, 64), (32, 32), (1024, 4)] {
        let cfg = EncoderConfig {
            code_block: cb,
            ..lossless_cfg()
        };
        let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        assert_eq!(
            pj2k_suite::image::metrics::max_abs_error(&img, &out),
            0,
            "code-block {cb:?}"
        );
    }
}

#[test]
fn level_sweep_including_zero() {
    let img = synth::natural_gray(100, 100, 4);
    for levels in [0u8, 1, 2, 5, 6] {
        let cfg = EncoderConfig {
            levels,
            ..lossless_cfg()
        };
        let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        assert_eq!(
            pj2k_suite::image::metrics::max_abs_error(&img, &out),
            0,
            "levels={levels}"
        );
    }
}

#[test]
fn constant_image_is_tiny() {
    let img = Image::gray8(Plane::from_fn(256, 256, |_, _| 200));
    let (bytes, _) = Encoder::new(lossless_cfg()).unwrap().encode(&img);
    assert!(bytes.len() < 2500, "constant image: {} bytes", bytes.len());
    let (out, _) = Decoder::default().decode(&bytes).unwrap();
    assert_eq!(pj2k_suite::image::metrics::max_abs_error(&img, &out), 0);
}

#[test]
fn comparator_codecs_roundtrip_same_inputs() {
    // The three codecs of Fig. 2 all work on the same source material.
    let img = synth::natural_gray(128, 128, 21);
    let j2k = {
        let (bytes, _) = Encoder::new(lossless_cfg()).unwrap().encode(&img);
        bytes
    };
    let jpg = pj2k_suite::jpegbase::encode(&img, 85).unwrap();
    let sp = pj2k_suite::spiht::encode(&img, 5, 2.0).unwrap();
    assert!(!j2k.is_empty() && !jpg.is_empty() && !sp.is_empty());
    assert!(pj2k_suite::jpegbase::decode(&jpg).is_ok());
    assert!(pj2k_suite::spiht::decode(&sp).is_ok());
}

#[test]
fn tier1_coding_styles_roundtrip_end_to_end() {
    use pj2k_suite::core::config::Tier1Options;
    let img = synth::natural_gray(96, 96, 33);
    for (causal, reset, bypass) in [
        (false, false, false),
        (true, false, false),
        (false, true, false),
        (true, true, false),
        (false, false, true),
        (true, true, true),
    ] {
        let cfg = EncoderConfig {
            tier1: Tier1Options {
                stripe_causal: causal,
                reset_contexts: reset,
                bypass,
            },
            ..lossless_cfg()
        };
        let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
        let (out, _) = Decoder::default().decode(&bytes).unwrap();
        assert_eq!(
            pj2k_suite::image::metrics::max_abs_error(&img, &out),
            0,
            "causal={causal} reset={reset} bypass={bypass}"
        );
    }
}

#[test]
fn tier1_style_flags_are_signalled_in_the_stream() {
    use pj2k_suite::core::config::Tier1Options;
    let img = synth::natural_gray(64, 64, 34);
    let mk = |causal, reset| {
        let cfg = EncoderConfig {
            tier1: Tier1Options {
                stripe_causal: causal,
                reset_contexts: reset,
                bypass: false,
            },
            ..lossless_cfg()
        };
        Encoder::new(cfg).unwrap().encode(&img).0
    };
    let plain = mk(false, false);
    let styled = mk(true, true);
    assert_ne!(plain, styled, "styles must change the stream");
    // Both decode with no external hints: the header carries the flags.
    let (a, _) = Decoder::default().decode(&plain).unwrap();
    let (b, _) = Decoder::default().decode(&styled).unwrap();
    assert_eq!(a, b, "both must reconstruct the same lossless image");
}

#[test]
fn roi_lossless_stays_bit_exact() {
    use pj2k_suite::core::Roi;
    let img = synth::natural_gray(128, 96, 44);
    let cfg = EncoderConfig {
        roi: Some(Roi {
            x0: 40,
            y0: 30,
            w: 32,
            h: 24,
        }),
        ..lossless_cfg()
    };
    let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
    let (out, _) = Decoder::default().decode(&bytes).unwrap();
    assert_eq!(
        pj2k_suite::image::metrics::max_abs_error(&img, &out),
        0,
        "MAXSHIFT must be transparent at full precision"
    );
}

#[test]
fn roi_region_gets_priority_at_low_rate() {
    use pj2k_suite::core::Roi;
    let img = synth::natural_gray(256, 256, 45);
    let roi = Roi {
        x0: 96,
        y0: 96,
        w: 64,
        h: 64,
    };
    let bpp = 0.2;
    let encode = |with_roi: bool| {
        let cfg = EncoderConfig {
            rate: RateControl::TargetBpp(vec![bpp]),
            roi: with_roi.then_some(roi),
            ..EncoderConfig::default()
        };
        let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
        Decoder::default().decode(&bytes).unwrap().0
    };
    let plain = encode(false);
    let prioritized = encode(true);
    // Compare quality inside the ROI (excluding the filter-margin fringe).
    let crop = |i: &Image| i.crop(roi.x0 + 8, roi.y0 + 8, roi.w - 16, roi.h - 16);
    let q_plain = psnr(&crop(&img), &crop(&plain));
    let q_roi = psnr(&crop(&img), &crop(&prioritized));
    assert!(
        q_roi > q_plain + 3.0,
        "ROI coding should lift region quality: {q_roi:.2} vs {q_plain:.2} dB"
    );
    // And the background pays for it.
    let bg_plain = psnr(&img.crop(0, 0, 64, 64), &plain.crop(0, 0, 64, 64));
    let bg_roi = psnr(&img.crop(0, 0, 64, 64), &prioritized.crop(0, 0, 64, 64));
    assert!(
        bg_roi < bg_plain + 0.5,
        "background must not improve: {bg_roi:.2} vs {bg_plain:.2} dB"
    );
}

#[test]
fn roi_with_tiling_roundtrips() {
    use pj2k_suite::core::Roi;
    let img = synth::natural_gray(100, 100, 46);
    let cfg = EncoderConfig {
        tiles: Some((64, 64)),
        roi: Some(Roi {
            x0: 50,
            y0: 50,
            w: 30,
            h: 30,
        }), // straddles all four tiles
        ..lossless_cfg()
    };
    let (bytes, _) = Encoder::new(cfg).unwrap().encode(&img);
    let (out, _) = Decoder::default().decode(&bytes).unwrap();
    assert_eq!(pj2k_suite::image::metrics::max_abs_error(&img, &out), 0);
}
