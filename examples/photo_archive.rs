//! Photo archive scenario: the motivating JPEG2000 use case — one embedded
//! codestream serving several quality tiers.
//!
//! A digital archive (the paper's intro motivates medical imaging and
//! consumer photo services) stores a single lossy-compressed master per
//! photograph and serves thumbnails/previews/full-quality from prefixes of
//! the same stream. This example encodes a photo with three quality layers
//! (0.25 / 1.0 / 3.0 bpp), then decodes each tier and reports the
//! rate/quality staircase, plus a lossless 5/3 master for comparison.
//!
//! ```sh
//! cargo run --release -p pj2k-suite --example photo_archive
//! ```

use pj2k_suite::prelude::*;

fn main() {
    let img = synth::natural_rgb(512, 512, 7);
    println!(
        "archiving a {}x{} RGB photo ({} raw bytes)",
        img.width(),
        img.height(),
        img.pixels() * 3
    );

    // One embedded master with three quality layers.
    let cfg = EncoderConfig {
        rate: RateControl::TargetBpp(vec![0.25, 1.0, 3.0]),
        filter: FilterStrategy::Strip,
        parallel: ParallelMode::Rayon { workers: 4 },
        ..EncoderConfig::default()
    };
    let (master, report) = Encoder::new(cfg).expect("valid config").encode(&img);
    println!(
        "master codestream: {} bytes ({:.3} bpp), {} code-blocks, {} passes",
        master.len(),
        master.len() as f64 * 8.0 / img.pixels() as f64,
        report.num_blocks,
        report.total_passes
    );

    for (layers, label) in [(1, "thumbnail tier"), (2, "preview tier"), (3, "full tier")] {
        let dec = Decoder {
            max_layers: Some(layers),
            ..Decoder::default()
        };
        let (out, _) = dec.decode(&master).expect("master decodes");
        println!(
            "  {label:<15} ({layers} layer{}) -> PSNR {:.2} dB",
            if layers > 1 { "s" } else { "" },
            psnr(&img, &out)
        );
    }

    // Archival master: reversible 5/3, bit-exact.
    let lossless_cfg = EncoderConfig {
        wavelet: Wavelet::Reversible53,
        rate: RateControl::Lossless,
        filter: FilterStrategy::Strip,
        ..EncoderConfig::default()
    };
    let (lossless, _) = Encoder::new(lossless_cfg)
        .expect("valid config")
        .encode(&img);
    let (restored, _) = Decoder::default().decode(&lossless).expect("decodes");
    let exact = pj2k_suite::image::metrics::max_abs_error(&img, &restored) == 0;
    println!(
        "lossless master: {} bytes ({:.3}x raw), bit-exact: {exact}",
        lossless.len(),
        lossless.len() as f64 / (img.pixels() * 3) as f64
    );
    assert!(exact, "reversible path must reconstruct exactly");
}
