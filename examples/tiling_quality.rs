//! Tiling-quality demo: why the paper rejects tile-based parallelization.
//!
//! Encodes the same image at a low bit rate (0.125 bpp, the paper's Fig. 4
//! setting) without tiling and with progressively smaller tiles (the tile
//! sizes the paper maps to 4/16/64/256 virtual CPUs in Fig. 5), plus the
//! baseline JPEG comparator, and reports the PSNR cost of each choice.
//! Center crops are written as PGM files so the blocking artifacts can be
//! inspected visually, mirroring Fig. 4.
//!
//! ```sh
//! cargo run --release -p pj2k-suite --example tiling_quality
//! ```

use pj2k_suite::prelude::*;

fn main() {
    let side = 512;
    let img = synth::natural_gray(side, side, 1234);
    let bpp = 0.125;
    println!("image: {side}x{side}, target {bpp} bpp\n");
    println!("{:<28} {:>12} {:>10}", "configuration", "bytes", "PSNR dB");

    let mut crops: Vec<(String, Image)> = Vec::new();

    // JPEG comparator at (roughly) the same rate: search the quality knob.
    let target_bytes = (bpp * (side * side) as f64 / 8.0) as usize;
    let mut q = 1u8;
    let mut jpeg_bytes = Vec::new();
    for quality in 1..=60 {
        let bytes = pj2k_suite::jpegbase::encode(&img, quality).expect("jpeg encodes");
        if bytes.len() > target_bytes && quality > 1 {
            break;
        }
        q = quality;
        jpeg_bytes = bytes;
    }
    let jpeg_out = pj2k_suite::jpegbase::decode(&jpeg_bytes).expect("jpeg decodes");
    println!(
        "{:<28} {:>12} {:>10.2}",
        format!("JPEG (q={q})"),
        jpeg_bytes.len(),
        psnr(&img, &jpeg_out)
    );
    crops.push(("fig4_jpeg.pgm".into(), jpeg_out));

    // JPEG2000, whole-image transform and with tiles.
    for tiles in [None, Some(256), Some(128), Some(64), Some(32)] {
        let cfg = EncoderConfig {
            rate: RateControl::TargetBpp(vec![bpp]),
            tiles: tiles.map(|t| (t, t)),
            filter: FilterStrategy::Strip,
            ..EncoderConfig::default()
        };
        let (bytes, _) = Encoder::new(cfg).expect("valid config").encode(&img);
        let (out, _) = Decoder::default().decode(&bytes).expect("decodes");
        let label = match tiles {
            None => "JPEG2000 (no tiling)".to_string(),
            Some(t) => format!("JPEG2000 ({t}x{t} tiles)"),
        };
        println!(
            "{:<28} {:>12} {:>10.2}",
            label,
            bytes.len(),
            psnr(&img, &out)
        );
        match tiles {
            None => crops.push(("fig4_jpeg2000.pgm".into(), out)),
            Some(128) => crops.push(("fig4_jpeg2000_tiled.pgm".into(), out)),
            _ => {}
        }
    }

    // Write Fig.4-style center crops.
    for (path, out) in &crops {
        let crop = out.crop(side / 4, side / 4, side / 2, side / 2);
        let mut f = std::fs::File::create(path).expect("create crop");
        pj2k_suite::image::pnm::write(&mut f, &crop).expect("write crop");
    }
    println!(
        "\nwrote center crops: {}",
        crops
            .iter()
            .map(|(p, _)| p.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "(Smaller tiles = more independent wavelet transforms = the rate-\n\
         distortion loss and blocking artifacts of the paper's Figs. 4–5.)"
    );
}
