//! Region-of-interest scenario: a surveillance / medical-imaging use case
//! (the application domains the paper's introduction motivates) where one
//! region must survive aggressive compression.
//!
//! Encodes the same frame at a low bit rate with and without a MAXSHIFT
//! ROI, reports the quality split between region and background, and writes
//! the reconstructions as PGM for inspection.
//!
//! ```sh
//! cargo run --release -p pj2k-suite --example roi_priority
//! ```

use pj2k_suite::core::Roi;
use pj2k_suite::prelude::*;

fn main() {
    let side = 512;
    let img = synth::natural_gray(side, side, 314);
    let roi = Roi {
        x0: 192,
        y0: 192,
        w: 128,
        h: 128,
    };
    let bpp = 0.2;
    println!(
        "frame: {side}x{side}, budget {bpp} bpp, ROI {}x{} at ({}, {})\n",
        roi.w, roi.h, roi.x0, roi.y0
    );

    let encode = |with_roi: bool| {
        let cfg = EncoderConfig {
            rate: RateControl::TargetBpp(vec![bpp]),
            filter: FilterStrategy::Strip,
            roi: with_roi.then_some(roi),
            ..EncoderConfig::default()
        };
        let (bytes, _) = Encoder::new(cfg).expect("valid config").encode(&img);
        let (out, _) = Decoder::default().decode(&bytes).expect("decodes");
        (bytes.len(), out)
    };

    let region = |i: &Image| i.crop(roi.x0 + 8, roi.y0 + 8, roi.w - 16, roi.h - 16);
    let background = |i: &Image| i.crop(0, 0, side / 3, side / 3);

    println!(
        "{:<22} {:>10} {:>14} {:>16}",
        "configuration", "bytes", "ROI PSNR (dB)", "backgd PSNR (dB)"
    );
    for (label, with_roi, file) in [
        ("uniform coding", false, "roi_off.pgm"),
        ("MAXSHIFT ROI", true, "roi_on.pgm"),
    ] {
        let (bytes, out) = encode(with_roi);
        println!(
            "{:<22} {:>10} {:>14.2} {:>16.2}",
            label,
            bytes,
            psnr(&region(&img), &region(&out)),
            psnr(&background(&img), &background(&out))
        );
        let mut f = std::fs::File::create(file).expect("create output");
        pj2k_suite::image::pnm::write(&mut f, &out).expect("write output");
    }
    println!(
        "\nwrote roi_off.pgm / roi_on.pgm — with the ROI enabled, the region\n\
         stays sharp while the background absorbs the rate cut. No mask is\n\
         transmitted: the decoder separates ROI coefficients by magnitude\n\
         (MAXSHIFT), so any pj2k decoder renders the stream correctly."
    );
}
