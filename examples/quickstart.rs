//! Quickstart: encode an image to a 1 bpp JPEG2000-style codestream,
//! decode it back, and report size/quality — the three calls every user of
//! the library starts from.
//!
//! ```sh
//! cargo run --release -p pj2k-suite --example quickstart [input.pgm]
//! ```
//!
//! Without an argument a deterministic synthetic photograph is used.

use pj2k_suite::prelude::*;
use std::io::BufReader;

fn main() {
    // 1. Obtain an image: a PGM/PPM from disk, or the synthetic stand-in.
    let img = match std::env::args().nth(1) {
        Some(path) => {
            let file = std::fs::File::open(&path).expect("cannot open input");
            pj2k_suite::image::pnm::read(&mut BufReader::new(file)).expect("not a PGM/PPM")
        }
        None => synth::natural_gray(512, 512, 2026),
    };
    println!(
        "input: {}x{} px, {} component(s)",
        img.width(),
        img.height(),
        img.num_components()
    );

    // 2. Encode at 1.0 bpp with the paper's defaults (5-level 9/7, 64x64
    //    code-blocks) plus its improved vertical filtering.
    let cfg = EncoderConfig {
        rate: RateControl::TargetBpp(vec![1.0]),
        filter: FilterStrategy::Strip,
        ..EncoderConfig::default()
    };
    let encoder = Encoder::new(cfg).expect("valid config");
    let (bytes, report) = encoder.encode(&img);
    let bpp = bytes.len() as f64 * 8.0 / img.pixels() as f64;
    println!("encoded: {} bytes ({bpp:.3} bpp)", bytes.len());
    for (stage, t) in report.stages.iter() {
        println!("  {stage:<28} {:>9.3} ms", t.as_secs_f64() * 1e3);
    }

    // 3. Decode and measure quality.
    let (decoded, _) = Decoder::default()
        .decode(&bytes)
        .expect("own stream decodes");
    println!("PSNR: {:.2} dB", psnr(&img, &decoded));

    // Bonus: write the reconstruction next to the input for inspection.
    let out_path = "quickstart_decoded.pgm";
    if decoded.num_components() == 1 {
        let mut f = std::fs::File::create(out_path).expect("create output");
        pj2k_suite::image::pnm::write(&mut f, &decoded).expect("write output");
        println!("wrote {out_path}");
    }
}
