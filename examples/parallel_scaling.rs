//! Parallel scaling demo: the paper's experiment on your machine.
//!
//! Encodes the same image under every combination of parallel mode
//! (sequential / worker pool a la JJ2000 / rayon a la Jasper+OpenMP) and
//! vertical-filtering strategy (naive / padded width / strip), printing
//! wall-clock, the vertical-vs-horizontal DWT split, and the speedup over
//! the sequential-naive baseline. On a multi-core host this reproduces the
//! paper's Figs. 7–9 live; on one core the scheduling model in
//! `pj2k-smpsim` (see the fig* harness binaries) takes over.
//!
//! ```sh
//! cargo run --release -p pj2k-suite --example parallel_scaling [side]
//! ```

use pj2k_suite::prelude::*;
use std::time::Instant;

fn main() {
    let side: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1024);
    let img = synth::natural_gray(side, side, 42);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "image: {side}x{side} ({} Kpixel), host CPUs: {host_cpus}",
        side * side / 1024
    );

    let modes: Vec<(&str, ParallelMode)> = vec![
        ("sequential", ParallelMode::Sequential),
        (
            "worker-pool",
            ParallelMode::WorkerPool { workers: host_cpus },
        ),
        ("rayon", ParallelMode::Rayon { workers: host_cpus }),
    ];
    let filters = [
        ("naive", FilterStrategy::Naive),
        ("padded", FilterStrategy::PaddedWidth),
        ("strip", FilterStrategy::Strip),
    ];

    println!(
        "{:<12} {:<8} {:>10} {:>12} {:>12} {:>9}",
        "mode", "filter", "total ms", "DWT vert ms", "DWT horz ms", "speedup"
    );
    let mut baseline = None;
    for (mode_name, mode) in &modes {
        for (filter_name, filter) in &filters {
            let cfg = EncoderConfig {
                rate: RateControl::TargetBpp(vec![1.0]),
                parallel: *mode,
                filter: *filter,
                ..EncoderConfig::default()
            };
            let encoder = Encoder::new(cfg).expect("valid config");
            let t0 = Instant::now();
            let (_, report) = encoder.encode(&img);
            let total = t0.elapsed().as_secs_f64();
            let base = *baseline.get_or_insert(total);
            println!(
                "{:<12} {:<8} {:>10.1} {:>12.1} {:>12.1} {:>8.2}x",
                mode_name,
                filter_name,
                total * 1e3,
                report.dwt.vertical.as_secs_f64() * 1e3,
                report.dwt.horizontal.as_secs_f64() * 1e3,
                base / total
            );
        }
    }
    println!(
        "\n(The sequential/naive row is the baseline; on a single-core host\n\
         the speedup column stays ~1 except for the filtering gains, which\n\
         are exactly the paper's serial cache effect.)"
    );
}
