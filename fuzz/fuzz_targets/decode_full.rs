//! Full-pipeline fuzz target: `Decoder::decode` over arbitrary bytes.
//!
//! The whole decode path — codestream parse, packet headers, Tier-1,
//! inverse DWT, color transform — must return `Ok` or `Err` without
//! panicking or allocating disproportionately to the input size. Seed the
//! corpus with encoder output (see `fuzz/seed_corpus.sh`) so coverage
//! starts past the header parser.

#![no_main]

use libfuzzer_sys::fuzz_target;
use pj2k_core::Decoder;

fuzz_target!(|data: &[u8]| {
    if let Err(e) = Decoder::default().decode(data) {
        // Error rendering is part of the attack surface too.
        let _ = format!("{e}");
    }
});
