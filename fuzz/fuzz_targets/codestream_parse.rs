//! Codestream-layer fuzz target: marker/segment walking and payload
//! field reads over arbitrary bytes.
//!
//! Exercises `MarkerReader`/`PayloadReader` directly, below the semantic
//! validation `Decoder::decode` performs, so parser-level bounds bugs
//! surface even when the higher layers would have rejected the stream.

#![no_main]

use libfuzzer_sys::fuzz_target;
use pj2k_tier2::codestream::{MarkerReader, PayloadReader};

fuzz_target!(|data: &[u8]| {
    let mut r = MarkerReader::new(data);
    // Walk marker segments until the reader errors or the data runs out.
    for _ in 0..4096 {
        let marker = match r.peek_marker() {
            Ok(m) => m,
            Err(e) => {
                let _ = format!("{e}");
                break;
            }
        };
        match r.expect_segment(marker) {
            Ok(payload) => {
                // Drain the payload through every field-read width.
                let mut p = PayloadReader::new(payload);
                while p.u32().is_ok() {}
                let mut p = PayloadReader::new(payload);
                loop {
                    if p.u8().is_err() || p.u16().is_err() || p.f64().is_err() {
                        break;
                    }
                }
            }
            Err(e) => {
                let _ = format!("{e}");
                // Delimiter-style markers carry no length; skip the two
                // marker bytes and keep walking.
                if r.raw(2).is_err() {
                    break;
                }
            }
        }
    }
});
