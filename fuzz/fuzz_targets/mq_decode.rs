//! MQ-decoder fuzz target: drive the arithmetic decoder over arbitrary
//! compressed bytes with rotating contexts.
//!
//! The MQ decoder's contract (DESIGN.md §9): a malformed segment decodes
//! to *some* symbol sequence — the A/C register discipline and the Qe
//! table's closed transition graph keep every index in bounds, and
//! reading past the end feeds synthetic 0xFF marker bytes, never a slice
//! overrun.

#![no_main]

use libfuzzer_sys::fuzz_target;
use pj2k_mq::{CtxState, MqDecoder};

fuzz_target!(|data: &[u8]| {
    let mut dec = MqDecoder::new(data);
    // The standard Tier-1 initialization rows.
    let mut ctxs = [CtxState::new(0), CtxState::new(3), CtxState::new(46)];
    // Decode well past the end of the data to exercise the synthetic-0xFF
    // tail path.
    let n = data.len() * 8 + 64;
    for i in 0..n {
        let ctx = &mut ctxs[i % 3];
        let bit = dec.decode(ctx);
        assert!(bit <= 1);
    }
});
