//! Tag-tree fuzz target: decode arbitrary bit streams into tag trees of
//! fuzzer-chosen geometry.
//!
//! The invariant under test (DESIGN.md §9): input bits set node values
//! and known-flags but can never steer an index, so malformed bits may
//! mis-decode a value — never panic or loop unboundedly.

#![no_main]

use libfuzzer_sys::fuzz_target;
use pj2k_tier2::bitio::HeaderBitReader;
use pj2k_tier2::TagTree;

fuzz_target!(|data: &[u8]| {
    let [w, h, t, rest @ ..] = data else { return };
    // Grid geometry is encoder-controlled (precinct layout), not
    // attacker-controlled; keep it in the realistic range.
    let (w, h) = (usize::from(w % 16) + 1, usize::from(h % 16) + 1);
    let threshold = u32::from(t % 40) + 1;
    let mut tree = TagTree::new(w, h);
    let mut bits = HeaderBitReader::new(rest);
    for y in 0..h {
        for x in 0..w {
            let known = tree.decode(x, y, threshold, &mut bits);
            if known {
                assert!(tree.leaf_value(x, y) < threshold);
            }
        }
    }
});
