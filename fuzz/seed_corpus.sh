#!/usr/bin/env bash
# Seed the fuzz corpora with real encoder output so coverage starts past
# the header parser instead of rediscovering the marker grammar bit by bit.
#
# Usage: ./fuzz/seed_corpus.sh   (from the repository root)
set -euo pipefail

cd "$(dirname "$0")/.."

for t in decode_full codestream_parse tagtree_decode mq_decode; do
    mkdir -p "fuzz/corpus/$t"
done

# The ignored `write_fuzz_seed_corpus` test in crates/core/tests/hardening.rs
# encodes the harness's synthetic test images and drops the codestreams
# into $PJ2K_SEED_DIR — the same corpus the mutation sweeps run over.
PJ2K_SEED_DIR="$PWD/fuzz/corpus/decode_full" \
    cargo test -q -p pj2k-core --test hardening write_fuzz_seed_corpus -- --ignored

# The codestream parser shares the decode_full seeds.
cp -n fuzz/corpus/decode_full/* fuzz/corpus/codestream_parse/ 2>/dev/null || true

# Tag-tree and MQ targets take raw bit/byte soup; short varied seeds are
# enough to get the geometry prefix explored.
for i in $(seq 0 15); do
    head -c $((16 + i * 8)) /dev/urandom >"fuzz/corpus/tagtree_decode/rand-$i"
    head -c $((16 + i * 8)) /dev/urandom >"fuzz/corpus/mq_decode/rand-$i"
done

echo "seeded: $(ls fuzz/corpus/decode_full | wc -l) codestreams + random bit seeds"
